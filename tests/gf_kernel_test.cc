// Cross-kernel equivalence property tests: every GF kernel backend (scalar
// table, SSSE3 split-table, AVX2 split-table, and their shared word-XOR
// coefficient-1 path) must be bit-identical for every coefficient, for odd
// and unaligned slice lengths, and under the documented aliasing contracts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "gf/gf256.h"
#include "gf/kernel.h"

namespace dblrep::gf {
namespace {

// Lengths chosen to straddle every kernel boundary: empty, sub-word, one
// byte short of / exactly / one byte past the 64-byte double-vector mark,
// and a large odd size that exercises main loop + tail together.
const std::vector<std::size_t> kLengths = {0, 1, 63, 64, 65, 4095};

Buffer pattern_buffer(std::size_t size, std::uint64_t seed) {
  return random_buffer(size, seed);
}

/// Ground truth from the scalar single-element API, one byte at a time.
Buffer reference_mul(const Buffer& src, Elem coeff) {
  Buffer out(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) out[i] = mul(coeff, src[i]);
  return out;
}

class KernelParamTest : public ::testing::TestWithParam<const GfKernel*> {};

TEST_P(KernelParamTest, MulSliceMatchesReferenceForEveryCoefficient) {
  const GfKernel& kernel = *GetParam();
  for (std::size_t n : kLengths) {
    const Buffer src = pattern_buffer(n, 7 + n);
    for (int c = 0; c < 256; ++c) {
      const auto coeff = static_cast<Elem>(c);
      Buffer dst(n, 0xaa);
      kernel.mul_slice(dst, src, coeff);
      EXPECT_EQ(dst, reference_mul(src, coeff))
          << kernel.name << " mul_slice coeff=" << c << " n=" << n;
    }
  }
}

TEST_P(KernelParamTest, AddmulSliceMatchesReferenceForEveryCoefficient) {
  const GfKernel& kernel = *GetParam();
  for (std::size_t n : kLengths) {
    const Buffer src = pattern_buffer(n, 11 + n);
    const Buffer base = pattern_buffer(n, 13 + n);
    for (int c = 0; c < 256; ++c) {
      const auto coeff = static_cast<Elem>(c);
      Buffer dst = base;
      kernel.addmul_slice(dst, src, coeff);
      const Buffer product = reference_mul(src, coeff);
      Buffer expected = base;
      for (std::size_t i = 0; i < n; ++i) expected[i] ^= product[i];
      EXPECT_EQ(dst, expected)
          << kernel.name << " addmul_slice coeff=" << c << " n=" << n;
    }
  }
}

TEST_P(KernelParamTest, ScaleSliceMatchesMulSlice) {
  const GfKernel& kernel = *GetParam();
  for (std::size_t n : kLengths) {
    const Buffer src = pattern_buffer(n, 17 + n);
    for (int c = 0; c < 256; ++c) {
      const auto coeff = static_cast<Elem>(c);
      Buffer dst = src;
      kernel.scale_slice(dst, coeff);
      EXPECT_EQ(dst, reference_mul(src, coeff))
          << kernel.name << " scale_slice coeff=" << c << " n=" << n;
    }
  }
}

TEST_P(KernelParamTest, XorSliceMatchesWordReference) {
  const GfKernel& kernel = *GetParam();
  for (std::size_t n : kLengths) {
    const Buffer src = pattern_buffer(n, 19 + n);
    const Buffer base = pattern_buffer(n, 23 + n);
    Buffer dst = base;
    kernel.xor_slice(dst, src);
    Buffer expected = base;
    for (std::size_t i = 0; i < n; ++i) expected[i] ^= src[i];
    EXPECT_EQ(dst, expected) << kernel.name << " xor_slice n=" << n;
  }
}

TEST_P(KernelParamTest, UnalignedSlicesMatchReference) {
  // Vector kernels use unaligned loads; prove it by offsetting both ends.
  const GfKernel& kernel = *GetParam();
  const std::size_t n = 1021;
  Buffer src_storage = pattern_buffer(n + 3, 29);
  Buffer dst_storage = pattern_buffer(n + 5, 31);
  const ByteSpan src = ByteSpan(src_storage).subspan(3, n);
  const MutableByteSpan dst = MutableByteSpan(dst_storage).subspan(1, n);
  const Buffer base(dst.begin(), dst.end());
  kernel.addmul_slice(dst, src, 0x8e);
  const Buffer product = reference_mul(Buffer(src.begin(), src.end()), 0x8e);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(dst[i], static_cast<std::uint8_t>(base[i] ^ product[i]))
        << kernel.name << " unaligned addmul at " << i;
  }
}

TEST_P(KernelParamTest, ExactAliasingIsAllowed) {
  // dst == src (the scale_slice case) is element-wise safe by contract.
  const GfKernel& kernel = *GetParam();
  const std::size_t n = 257;
  const Buffer base = pattern_buffer(n, 37);

  Buffer buf = base;
  kernel.mul_slice(buf, buf, 0x53);
  EXPECT_EQ(buf, reference_mul(base, 0x53)) << kernel.name;

  // dst ^= c * dst == (1 + c) * dst in GF(2^8).
  buf = base;
  kernel.addmul_slice(buf, buf, 0x53);
  EXPECT_EQ(buf, reference_mul(base, add(1, 0x53))) << kernel.name;
}

TEST_P(KernelParamTest, MatrixApplyMatchesRowByRowReference) {
  const GfKernel& kernel = *GetParam();
  const std::size_t k = 5;
  const std::size_t rows = 4;
  for (std::size_t n : kLengths) {
    std::vector<Buffer> sources_storage;
    std::vector<ByteSpan> sources;
    for (std::size_t i = 0; i < k; ++i) {
      sources_storage.push_back(pattern_buffer(n, 41 + i));
      sources.emplace_back(sources_storage.back());
    }
    // Coefficients cover the interesting classes: zero rows, all-ones
    // (XOR parity), and general multipliers.
    std::vector<Elem> coeffs(rows * k);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < k; ++c) {
        coeffs[r * k + c] = static_cast<Elem>(
            r == 0 ? 0 : r == 1 ? 1 : (37 * r + 11 * c + 3) % 256);
      }
    }
    std::vector<Buffer> outputs_storage(rows, Buffer(n, 0x55));
    std::vector<MutableByteSpan> outputs;
    for (auto& out : outputs_storage) outputs.emplace_back(out);
    kernel.matrix_apply(coeffs, sources, outputs);

    for (std::size_t r = 0; r < rows; ++r) {
      Buffer expected(n, 0);
      for (std::size_t c = 0; c < k; ++c) {
        const Buffer product = reference_mul(sources_storage[c], coeffs[r * k + c]);
        for (std::size_t i = 0; i < n; ++i) expected[i] ^= product[i];
      }
      EXPECT_EQ(outputs_storage[r], expected)
          << kernel.name << " matrix_apply row " << r << " n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSupportedKernels, KernelParamTest,
    ::testing::ValuesIn(supported_kernels()),
    [](const ::testing::TestParamInfo<const GfKernel*>& info) {
      return std::string(info.param->name);
    });

TEST(GfKernelDispatch, ScalarKernelIsAlwaysSupported) {
  EXPECT_NE(find_kernel("scalar"), nullptr);
  EXPECT_EQ(find_kernel("no-such-kernel"), nullptr);
}

TEST(GfKernelDispatch, SetActiveKernelRoutesFreeFunctions) {
  const GfKernel& original = active_kernel();
  for (const GfKernel* kernel : supported_kernels()) {
    ASSERT_TRUE(set_active_kernel(kernel->name));
    EXPECT_EQ(active_kernel().name, kernel->name);
    // The gf256.h free functions must follow the switch.
    const Buffer src = pattern_buffer(100, 43);
    Buffer dst(100, 0);
    mul_slice(dst, src, 0x1d);
    EXPECT_EQ(dst, reference_mul(src, 0x1d)) << kernel->name;
  }
  EXPECT_FALSE(set_active_kernel("no-such-kernel"));
  ASSERT_TRUE(set_active_kernel(original.name));
}

#ifndef NDEBUG
TEST(GfKernelDispatch, PartialOverlapTripsDebugCheck) {
  Buffer buf(128, 1);
  MutableByteSpan dst = MutableByteSpan(buf).subspan(0, 64);
  ByteSpan src = ByteSpan(buf).subspan(32, 64);
  EXPECT_THROW(mul_slice(dst, src, 2), ContractViolation);
  EXPECT_THROW(addmul_slice(dst, src, 2), ContractViolation);
}
#endif

}  // namespace
}  // namespace dblrep::gf
