// Cross-kernel equivalence property tests: every GF kernel backend (scalar
// table, SSSE3/AVX2/AVX-512 split-table, GFNI affine, and their shared
// word-XOR coefficient-1 path) must be bit-identical for every coefficient,
// for odd and unaligned slice lengths, with and without streaming stores,
// and under the documented aliasing contracts. Kernels the host cannot run
// never appear in supported_kernels(); the RunsOrSkips tests below make
// that absence visible as a GTEST_SKIP instead of silent green.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "gf/gf256.h"
#include "gf/kernel.h"

namespace dblrep::gf {
namespace {

// Lengths chosen to straddle every kernel boundary: empty, sub-word, one
// byte short of / exactly / one byte past the 64-byte double-vector mark,
// and a large odd size that exercises main loop + tail together.
const std::vector<std::size_t> kLengths = {0, 1, 63, 64, 65, 4095};

Buffer pattern_buffer(std::size_t size, std::uint64_t seed) {
  return random_buffer(size, seed);
}

/// Ground truth from the scalar single-element API, one byte at a time.
Buffer reference_mul(const Buffer& src, Elem coeff) {
  Buffer out(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) out[i] = mul(coeff, src[i]);
  return out;
}

class KernelParamTest : public ::testing::TestWithParam<const GfKernel*> {};

TEST_P(KernelParamTest, MulSliceMatchesReferenceForEveryCoefficient) {
  const GfKernel& kernel = *GetParam();
  for (std::size_t n : kLengths) {
    const Buffer src = pattern_buffer(n, 7 + n);
    for (int c = 0; c < 256; ++c) {
      const auto coeff = static_cast<Elem>(c);
      Buffer dst(n, 0xaa);
      kernel.mul_slice(dst, src, coeff);
      EXPECT_EQ(dst, reference_mul(src, coeff))
          << kernel.name << " mul_slice coeff=" << c << " n=" << n;
    }
  }
}

TEST_P(KernelParamTest, AddmulSliceMatchesReferenceForEveryCoefficient) {
  const GfKernel& kernel = *GetParam();
  for (std::size_t n : kLengths) {
    const Buffer src = pattern_buffer(n, 11 + n);
    const Buffer base = pattern_buffer(n, 13 + n);
    for (int c = 0; c < 256; ++c) {
      const auto coeff = static_cast<Elem>(c);
      Buffer dst = base;
      kernel.addmul_slice(dst, src, coeff);
      const Buffer product = reference_mul(src, coeff);
      Buffer expected = base;
      for (std::size_t i = 0; i < n; ++i) expected[i] ^= product[i];
      EXPECT_EQ(dst, expected)
          << kernel.name << " addmul_slice coeff=" << c << " n=" << n;
    }
  }
}

TEST_P(KernelParamTest, ScaleSliceMatchesMulSlice) {
  const GfKernel& kernel = *GetParam();
  for (std::size_t n : kLengths) {
    const Buffer src = pattern_buffer(n, 17 + n);
    for (int c = 0; c < 256; ++c) {
      const auto coeff = static_cast<Elem>(c);
      Buffer dst = src;
      kernel.scale_slice(dst, coeff);
      EXPECT_EQ(dst, reference_mul(src, coeff))
          << kernel.name << " scale_slice coeff=" << c << " n=" << n;
    }
  }
}

TEST_P(KernelParamTest, XorSliceMatchesWordReference) {
  const GfKernel& kernel = *GetParam();
  for (std::size_t n : kLengths) {
    const Buffer src = pattern_buffer(n, 19 + n);
    const Buffer base = pattern_buffer(n, 23 + n);
    Buffer dst = base;
    kernel.xor_slice(dst, src);
    Buffer expected = base;
    for (std::size_t i = 0; i < n; ++i) expected[i] ^= src[i];
    EXPECT_EQ(dst, expected) << kernel.name << " xor_slice n=" << n;
  }
}

TEST_P(KernelParamTest, UnalignedSlicesMatchReference) {
  // Vector kernels use unaligned loads; prove it by offsetting both ends.
  const GfKernel& kernel = *GetParam();
  const std::size_t n = 1021;
  Buffer src_storage = pattern_buffer(n + 3, 29);
  Buffer dst_storage = pattern_buffer(n + 5, 31);
  const ByteSpan src = ByteSpan(src_storage).subspan(3, n);
  const MutableByteSpan dst = MutableByteSpan(dst_storage).subspan(1, n);
  const Buffer base(dst.begin(), dst.end());
  kernel.addmul_slice(dst, src, 0x8e);
  const Buffer product = reference_mul(Buffer(src.begin(), src.end()), 0x8e);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(dst[i], static_cast<std::uint8_t>(base[i] ^ product[i]))
        << kernel.name << " unaligned addmul at " << i;
  }
}

TEST_P(KernelParamTest, ExactAliasingIsAllowed) {
  // dst == src (the scale_slice case) is element-wise safe by contract.
  const GfKernel& kernel = *GetParam();
  const std::size_t n = 257;
  const Buffer base = pattern_buffer(n, 37);

  Buffer buf = base;
  kernel.mul_slice(buf, buf, 0x53);
  EXPECT_EQ(buf, reference_mul(base, 0x53)) << kernel.name;

  // dst ^= c * dst == (1 + c) * dst in GF(2^8).
  buf = base;
  kernel.addmul_slice(buf, buf, 0x53);
  EXPECT_EQ(buf, reference_mul(base, add(1, 0x53))) << kernel.name;
}

TEST_P(KernelParamTest, MatrixApplyMatchesRowByRowReference) {
  const GfKernel& kernel = *GetParam();
  const std::size_t k = 5;
  const std::size_t rows = 4;
  for (std::size_t n : kLengths) {
    std::vector<Buffer> sources_storage;
    std::vector<ByteSpan> sources;
    for (std::size_t i = 0; i < k; ++i) {
      sources_storage.push_back(pattern_buffer(n, 41 + i));
      sources.emplace_back(sources_storage.back());
    }
    // Coefficients cover the interesting classes: zero rows, all-ones
    // (XOR parity), and general multipliers.
    std::vector<Elem> coeffs(rows * k);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < k; ++c) {
        coeffs[r * k + c] = static_cast<Elem>(
            r == 0 ? 0 : r == 1 ? 1 : (37 * r + 11 * c + 3) % 256);
      }
    }
    std::vector<Buffer> outputs_storage(rows, Buffer(n, 0x55));
    std::vector<MutableByteSpan> outputs;
    for (auto& out : outputs_storage) outputs.emplace_back(out);
    kernel.matrix_apply(coeffs, sources, outputs);

    for (std::size_t r = 0; r < rows; ++r) {
      Buffer expected(n, 0);
      for (std::size_t c = 0; c < k; ++c) {
        const Buffer product = reference_mul(sources_storage[c], coeffs[r * k + c]);
        for (std::size_t i = 0; i < n; ++i) expected[i] ^= product[i];
      }
      EXPECT_EQ(outputs_storage[r], expected)
          << kernel.name << " matrix_apply row " << r << " n=" << n;
    }
  }
}

TEST_P(KernelParamTest, XorFoldMatchesReferenceForEverySourceCount) {
  const GfKernel& kernel = *GetParam();
  for (std::size_t n : kLengths) {
    for (std::size_t num_sources = 1; num_sources <= 5; ++num_sources) {
      std::vector<Buffer> storage;
      std::vector<ByteSpan> sources;
      Buffer expected(n, 0);
      for (std::size_t s = 0; s < num_sources; ++s) {
        storage.push_back(pattern_buffer(n, 47 + 7 * s + n));
        sources.emplace_back(storage.back());
        for (std::size_t i = 0; i < n; ++i) expected[i] ^= storage[s][i];
      }
      for (const bool nt : {false, true}) {
        Buffer dst(n, 0xcc);  // fold overwrites: stale bytes must vanish
        kernel.xor_fold_slice(dst, sources, nt);
        EXPECT_EQ(dst, expected)
            << kernel.name << " xor_fold sources=" << num_sources
            << " n=" << n << " nt=" << nt;
      }
    }
  }
}

TEST_P(KernelParamTest, XorFoldUnalignedHeadsAndRaggedTails) {
  // The streaming-store path peels a scalar head up to the vector
  // alignment and a word tail after the streamed interior; misalign dst
  // and every source differently so head, interior, and tail all carry
  // data, with and without the hint.
  const GfKernel& kernel = *GetParam();
  const std::size_t n = 3 * 1024 + 7;
  std::vector<Buffer> storage;
  std::vector<ByteSpan> sources;
  for (std::size_t s = 0; s < 3; ++s) {
    storage.push_back(pattern_buffer(n + s + 1, 53 + s));
    sources.push_back(ByteSpan(storage.back()).subspan(s + 1, n));
  }
  Buffer expected(n, 0);
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t i = 0; i < n; ++i) expected[i] ^= sources[s][i];
  }
  for (const bool nt : {false, true}) {
    Buffer dst_storage(n + 5, 0x11);
    const MutableByteSpan dst = MutableByteSpan(dst_storage).subspan(5, n);
    kernel.xor_fold_slice(dst, sources, nt);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(dst[i], expected[i])
          << kernel.name << " unaligned fold at " << i << " nt=" << nt;
    }
  }
}

TEST_P(KernelParamTest, MatrixApplyBatchMatchesPerGroupApply) {
  // The fused cross-stripe path must be byte-identical to applying the
  // same coefficient block group by group.
  const GfKernel& kernel = *GetParam();
  const std::size_t k = 4;
  const std::size_t rows = 3;
  const std::size_t groups = 3;
  for (std::size_t n : kLengths) {
    std::vector<Elem> coeffs(rows * k);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < k; ++c) {
        coeffs[r * k + c] = static_cast<Elem>(
            r == 0 ? 1 : (59 * r + 17 * c + 5) % 256);
      }
    }
    std::vector<Buffer> sources_storage;
    std::vector<ByteSpan> sources;
    for (std::size_t i = 0; i < groups * k; ++i) {
      sources_storage.push_back(pattern_buffer(n, 61 + i));
      sources.emplace_back(sources_storage.back());
    }
    std::vector<Buffer> batch_storage(groups * rows, Buffer(n, 0x44));
    std::vector<MutableByteSpan> batch_outputs;
    for (auto& out : batch_storage) batch_outputs.emplace_back(out);
    kernel.matrix_apply_batch(coeffs, sources, batch_outputs, groups);

    for (std::size_t g = 0; g < groups; ++g) {
      std::vector<Buffer> single_storage(rows, Buffer(n, 0x99));
      std::vector<MutableByteSpan> single_outputs;
      for (auto& out : single_storage) single_outputs.emplace_back(out);
      kernel.matrix_apply(
          coeffs,
          std::span<const ByteSpan>(sources.data() + g * k, k),
          single_outputs);
      for (std::size_t r = 0; r < rows; ++r) {
        EXPECT_EQ(batch_storage[g * rows + r], single_storage[r])
            << kernel.name << " batch group " << g << " row " << r
            << " n=" << n;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSupportedKernels, KernelParamTest,
    ::testing::ValuesIn(supported_kernels()),
    [](const ::testing::TestParamInfo<const GfKernel*>& info) {
      return std::string(info.param->name);
    });

TEST(GfKernelDispatch, ScalarKernelIsAlwaysSupported) {
  EXPECT_NE(find_kernel("scalar"), nullptr);
  EXPECT_EQ(find_kernel("no-such-kernel"), nullptr);
}

TEST(GfKernelDispatch, SetActiveKernelRoutesFreeFunctions) {
  const GfKernel& original = active_kernel();
  for (const GfKernel* kernel : supported_kernels()) {
    ASSERT_TRUE(set_active_kernel(kernel->name));
    EXPECT_EQ(active_kernel().name, kernel->name);
    // The gf256.h free functions must follow the switch.
    const Buffer src = pattern_buffer(100, 43);
    Buffer dst(100, 0);
    mul_slice(dst, src, 0x1d);
    EXPECT_EQ(dst, reference_mul(src, 0x1d)) << kernel->name;
  }
  EXPECT_FALSE(set_active_kernel("no-such-kernel"));
  ASSERT_TRUE(set_active_kernel(original.name));
}

// One visible skip per hardware-gated kernel: the param suite only
// instantiates kernels the host supports, so without these a machine
// lacking (say) GFNI would report green with the kernel never executed.
TEST(GfKernelDispatch, Ssse3RunsOrSkips) {
  if (find_kernel("ssse3") == nullptr) {
    GTEST_SKIP() << "host lacks SSSE3; kernel excluded from the param suite";
  }
  EXPECT_TRUE(set_active_kernel("ssse3"));
  ASSERT_TRUE(set_active_kernel("scalar"));
}

TEST(GfKernelDispatch, Avx2RunsOrSkips) {
  if (find_kernel("avx2") == nullptr) {
    GTEST_SKIP() << "host lacks AVX2; kernel excluded from the param suite";
  }
  EXPECT_TRUE(set_active_kernel("avx2"));
  ASSERT_TRUE(set_active_kernel("scalar"));
}

TEST(GfKernelDispatch, Avx512RunsOrSkips) {
  if (find_kernel("avx512") == nullptr) {
    GTEST_SKIP() << "host lacks AVX-512F/BW/VL or OS ZMM state; kernel "
                    "excluded from the param suite";
  }
  EXPECT_TRUE(set_active_kernel("avx512"));
  ASSERT_TRUE(set_active_kernel("scalar"));
}

TEST(GfKernelDispatch, GfniRunsOrSkips) {
  if (find_kernel("gfni") == nullptr) {
    GTEST_SKIP() << "host lacks GFNI (or the AVX-512 it rides on); kernel "
                    "excluded from the param suite";
  }
  EXPECT_TRUE(set_active_kernel("gfni"));
  ASSERT_TRUE(set_active_kernel("scalar"));
}

TEST(SliceOpStats, NonTemporalRemovesRfoFromModeledTraffic) {
  // The modeled accounting behind the bench's bytes-moved gate: an
  // all-ones parity row over a slice at the NT threshold. A regular store
  // pays write + read-for-ownership; a streaming store pays write only.
  // The model is kernel-independent, so this holds even on scalar-only
  // hosts (where the hint is ignored at execution but the routing --
  // which is what the model audits -- is identical).
  const std::size_t n = kNonTemporalMinBytes;
  std::vector<Buffer> storage;
  std::vector<ByteSpan> sources;
  for (std::size_t s = 0; s < 3; ++s) {
    storage.push_back(pattern_buffer(n, 67 + s));
    sources.emplace_back(storage.back());
  }
  const std::vector<Elem> coeffs = {1, 1, 1};
  Buffer out(n);
  std::vector<MutableByteSpan> outputs = {MutableByteSpan(out)};

  const bool nt_was_enabled = non_temporal_enabled();
  const auto moved = [&](bool nt) {
    set_non_temporal(nt);
    reset_slice_op_stats();
    matrix_apply(coeffs, sources, outputs);
    return slice_op_stats();
  };
  const SliceOpStats regular = moved(false);
  const SliceOpStats streamed = moved(true);
  set_non_temporal(nt_was_enabled);

  EXPECT_EQ(regular.src_bytes_read, 3 * n);
  EXPECT_EQ(regular.dst_bytes_written, n);
  EXPECT_EQ(regular.rfo_bytes_read, n);
  EXPECT_EQ(regular.nt_bytes_written, 0u);

  EXPECT_EQ(streamed.src_bytes_read, 3 * n);
  EXPECT_EQ(streamed.dst_bytes_written, n);
  EXPECT_EQ(streamed.rfo_bytes_read, 0u);
  EXPECT_EQ(streamed.nt_bytes_written, n);

  EXPECT_LT(streamed.total_bytes_moved(), regular.total_bytes_moved());
}

#ifndef NDEBUG
TEST(GfKernelDispatch, PartialOverlapTripsDebugCheck) {
  Buffer buf(128, 1);
  MutableByteSpan dst = MutableByteSpan(buf).subspan(0, 64);
  ByteSpan src = ByteSpan(buf).subspan(32, 64);
  EXPECT_THROW(mul_slice(dst, src, 2), ContractViolation);
  EXPECT_THROW(addmul_slice(dst, src, 2), ContractViolation);
}
#endif

}  // namespace
}  // namespace dblrep::gf
