// Property tests for two-stage repair layering (ec/layering.h): for every
// registered code and failure pattern, the layered plan must execute to
// byte-identical results, never send more cross-rack blocks than the
// unlayered plan, and keep the total block count unchanged.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ec/layering.h"
#include "ec/local_polygon.h"
#include "ec/polygon.h"
#include "ec/registry.h"
#include "ec/repair.h"
#include "ec/rs.h"

namespace dblrep::ec {
namespace {

constexpr std::size_t kBlockSize = 96;

std::vector<Buffer> random_data(const CodeScheme& code, std::uint64_t seed) {
  std::vector<Buffer> data;
  for (std::size_t i = 0; i < code.data_blocks(); ++i) {
    data.push_back(random_buffer(kBlockSize, seed * 1000 + i));
  }
  return data;
}

SlotStore store_without_nodes(const CodeScheme& code,
                              const std::vector<Buffer>& data,
                              const std::set<NodeIndex>& failed) {
  const auto slots = code.encode(data);
  SlotStore store;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (!failed.contains(code.layout().node_of_slot(s))) store[s] = slots[s];
  }
  return store;
}

/// Round-robin rack map over the code's nodes.
std::vector<int> round_robin_racks(const CodeScheme& code,
                                   std::size_t num_racks) {
  std::vector<int> racks(code.num_nodes());
  for (std::size_t i = 0; i < racks.size(); ++i) {
    racks[i] = static_cast<int>(i % num_racks);
  }
  return racks;
}

/// Executes both forms of a node-repair plan and checks the layered one is
/// byte-identical, no more cross-rack, and no larger.
void check_repair_equivalence(const CodeScheme& code,
                              const std::set<NodeIndex>& failed,
                              const std::vector<int>& racks,
                              std::uint64_t seed) {
  const auto data = random_data(code, seed);
  const auto pristine = code.encode(data);
  const auto plan = code.plan_multi_node_repair(failed);
  ASSERT_TRUE(plan.is_ok());
  const RepairPlan layered = layer_plan(*plan, racks);

  EXPECT_LE(cross_rack_sends(layered, racks), cross_rack_sends(*plan, racks));
  EXPECT_EQ(layered.network_units(), plan->network_units());

  PlanExecutor executor(code.layout());
  auto plain_store = store_without_nodes(code, data, failed);
  auto layered_store = store_without_nodes(code, data, failed);
  ASSERT_TRUE(executor.execute(*plan, plain_store).is_ok());
  ASSERT_TRUE(executor.execute(layered, layered_store).is_ok());
  for (std::size_t s = 0; s < pristine.size(); ++s) {
    ASSERT_TRUE(layered_store.contains(s)) << "slot " << s << " missing";
    EXPECT_EQ(layered_store.at(s), pristine[s]) << "slot " << s;
    EXPECT_EQ(layered_store.at(s), plain_store.at(s)) << "slot " << s;
  }
}

TEST(LayerPlan, EveryCodeEveryFailurePatternIsEquivalent) {
  auto specs = paper_code_specs();
  specs.push_back("rs-10-4");
  specs.push_back("rs-6-3");
  specs.push_back("clay-6-4");
  specs.push_back("pgy-10-4");
  for (const auto& spec : specs) {
    SCOPED_TRACE(spec);
    const auto code = make_code(spec).value();
    const auto n = static_cast<NodeIndex>(code->num_nodes());
    const auto racks = round_robin_racks(*code, 3);
    for (NodeIndex a = 0; a < n; ++a) {
      check_repair_equivalence(*code, {a}, racks, 11);
    }
    if (code->params().fault_tolerance >= 2) {
      // All pairs for small codes, a deterministic stride for big ones.
      const NodeIndex stride = n > 9 ? 3 : 1;
      for (NodeIndex a = 0; a < n; a += stride) {
        for (NodeIndex b = a + 1; b < n; b += stride) {
          check_repair_equivalence(*code, {a, b}, racks, 13);
        }
      }
    }
  }
}

TEST(LayerPlan, DegradedReadDeliversIdenticalBytesPerRackRelayed) {
  // Degraded read of a doubly-lost pentagon block: three partial parities
  // normally go to the client; with two sources sharing a rack, the
  // layered plan relays them as one block.
  PolygonCode pentagon(5);
  const auto data = random_data(pentagon, 21);
  const auto symbols = pentagon.encode_symbols(data);
  const std::vector<int> racks = {0, 0, 1, 1, 2};
  PlanExecutor executor(pentagon.layout());
  for (NodeIndex a = 0; a < 5; ++a) {
    for (NodeIndex b = a + 1; b < 5; ++b) {
      const std::size_t sym = pentagon.shared_symbol(a, b);
      const auto plan = pentagon.plan_degraded_read(sym, {a, b});
      ASSERT_TRUE(plan.is_ok());
      const RepairPlan layered = layer_plan(*plan, racks);
      EXPECT_LE(cross_rack_sends(layered, racks),
                cross_rack_sends(*plan, racks));

      auto plain_store = store_without_nodes(pentagon, data, {a, b});
      auto layered_store = store_without_nodes(pentagon, data, {a, b});
      auto plain = executor.execute(*plan, plain_store);
      auto relayed = executor.execute(layered, layered_store);
      ASSERT_TRUE(plain.is_ok());
      ASSERT_TRUE(relayed.is_ok());
      ASSERT_EQ(relayed->size(), 1u);
      EXPECT_EQ((*relayed)[0], symbols[sym]);
      EXPECT_EQ((*relayed)[0], (*plain)[0]);
    }
  }
}

TEST(LayerPlan, RsSingleFailureCollapsesToOneSendPerRack) {
  // The textbook layering win: a (6,3) RS repair reads k = 6 helpers; with
  // nodes round-robined over 3 racks, each remote rack forwards exactly
  // one relay instead of its 2-3 individual sends.
  RsCode rs(6, 3);
  const auto racks = round_robin_racks(rs, 3);
  const auto plan = rs.plan_node_repair(0);
  ASSERT_TRUE(plan.is_ok());
  const RepairPlan layered = layer_plan(*plan, racks);
  // Unlayered: every helper outside rack 0 crosses a rack boundary.
  EXPECT_GT(cross_rack_sends(*plan, racks), 2u);
  // Layered: one relay per remote rack that contributed >= 2 helpers.
  EXPECT_LE(cross_rack_sends(layered, racks), 2u);
  EXPECT_GT(layered.relay_sends(), 0u);
  EXPECT_EQ(layered.network_units(), plan->network_units());
}

TEST(LayerPlan, SingleRackIsANoOp) {
  PolygonCode pentagon(5);
  const auto racks = round_robin_racks(pentagon, 1);
  const auto plan = pentagon.plan_multi_node_repair({0, 1});
  ASSERT_TRUE(plan.is_ok());
  const RepairPlan layered = layer_plan(*plan, racks);
  EXPECT_EQ(layered.aggregates, plan->aggregates);
  EXPECT_EQ(layered.reconstructions, plan->reconstructions);
}

TEST(LayerPlan, IsIdempotent) {
  RsCode rs(6, 3);
  const auto racks = round_robin_racks(rs, 3);
  const auto plan = rs.plan_node_repair(2);
  ASSERT_TRUE(plan.is_ok());
  const RepairPlan once = layer_plan(*plan, racks);
  const RepairPlan twice = layer_plan(once, racks);
  EXPECT_EQ(once.aggregates, twice.aggregates);
  EXPECT_EQ(once.reconstructions, twice.reconstructions);
}

TEST(LayerPlan, GroupPerRackHeptagonLocalRepairStaysInRack) {
  // The code's own rack structure (each local in its rack): repairing one
  // node of local 0 must not cross racks, layered or not.
  LocalPolygonCode code(7);
  std::vector<int> racks(code.num_nodes());
  for (NodeIndex n = 0; n < static_cast<NodeIndex>(code.num_nodes()); ++n) {
    racks[static_cast<std::size_t>(n)] = code.rack_of_node(n);
  }
  const auto plan = code.plan_node_repair(3);
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(cross_rack_sends(*plan, racks), 0u);
  const RepairPlan layered = layer_plan(*plan, racks);
  EXPECT_EQ(cross_rack_sends(layered, racks), 0u);
  // Global-node repair recomputes both parities from all 14 data nodes;
  // layering squeezes each local's contribution to one cross-rack relay
  // per rebuilt parity: 2 parities x 2 local racks = 4 sends instead of
  // one per helper node.
  const auto global_plan = code.plan_node_repair(code.global_node());
  ASSERT_TRUE(global_plan.is_ok());
  const RepairPlan global_layered = layer_plan(*global_plan, racks);
  EXPECT_LT(cross_rack_sends(global_layered, racks),
            cross_rack_sends(*global_plan, racks));
  EXPECT_LE(cross_rack_sends(global_layered, racks), 4u);
}

TEST(LayerPlan, SubChunkNodeRepairPlansLayerEquivalently) {
  // The sub-packetized schemes' plan_node_repair produces sub-chunk plans
  // (helpers ship beta < alpha units); layering must preserve bytes and
  // unit counts for every failed-node choice, and the unit counts must hit
  // the schemes' exact repair bandwidth: clay-6-4 reads beta * d =
  // 4 * 5 = 20 units for every node; pgy-10-4 reads 10 + |group| units for
  // a data node (14 for the piggyback-free first group, 13 otherwise) and
  // falls back to the generic k * alpha = 20 units for a parity node.
  for (const char* spec : {"clay-6-4", "pgy-10-4"}) {
    SCOPED_TRACE(spec);
    const auto code = make_code(spec).value();
    const auto racks = round_robin_racks(*code, 3);
    const auto data = random_data(*code, 17);
    const auto pristine = code->encode(data);
    const auto n = static_cast<NodeIndex>(code->num_nodes());
    for (NodeIndex f = 0; f < n; ++f) {
      SCOPED_TRACE(static_cast<int>(f));
      const auto plan = code->plan_node_repair(f);
      ASSERT_TRUE(plan.is_ok());
      if (std::string(spec) == "clay-6-4") {
        EXPECT_EQ(plan->network_units(), 20u);
        // beta * helpers exactly: each of the d = 5 helpers ships beta = 4.
        std::map<NodeIndex, std::size_t> per_helper;
        for (const auto& send : plan->aggregates) ++per_helper[send.from_node];
        EXPECT_EQ(per_helper.size(), 5u);
        for (const auto& [helper, count] : per_helper) EXPECT_EQ(count, 4u);
      } else if (f < static_cast<NodeIndex>(code->data_blocks())) {
        EXPECT_EQ(plan->network_units(), f < 4 ? 14u : 13u);
      } else {
        EXPECT_EQ(plan->network_units(), 20u);
      }

      const RepairPlan layered = layer_plan(*plan, racks);
      EXPECT_LE(cross_rack_sends(layered, racks),
                cross_rack_sends(*plan, racks));
      EXPECT_EQ(layered.network_units(), plan->network_units());
      PlanExecutor executor(code->layout());
      auto plain_store = store_without_nodes(*code, data, {f});
      auto layered_store = store_without_nodes(*code, data, {f});
      ASSERT_TRUE(executor.execute(*plan, plain_store).is_ok());
      ASSERT_TRUE(executor.execute(layered, layered_store).is_ok());
      for (std::size_t s = 0; s < pristine.size(); ++s) {
        ASSERT_TRUE(layered_store.contains(s)) << "slot " << s << " missing";
        EXPECT_EQ(layered_store.at(s), pristine[s]) << "slot " << s;
        EXPECT_EQ(layered_store.at(s), plain_store.at(s)) << "slot " << s;
      }
    }
  }
}

// ----------------------------------------------------- executor contracts

TEST(PlanExecutor, RefusesRelayReferencingLaterAggregate) {
  PolygonCode pentagon(5);
  PlanExecutor executor(pentagon.layout());
  const auto data = random_data(pentagon, 31);
  auto store = store_without_nodes(pentagon, data, {});
  RepairPlan bogus;
  // A0 relays A1, which comes later: an invalid (cyclic-capable) plan.
  bogus.aggregates.push_back(
      {1, kClientNode, {}, {{1, gf::Elem{1}}}});
  bogus.aggregates.push_back(
      {2, 1, {{pentagon.layout().slots_on_node(2)[0], 1}}, {}});
  bogus.reconstructions.push_back(
      {0, Reconstruction::kClientSlot, {{0, 1}}, {}});
  const auto run = executor.execute(bogus, store);
  EXPECT_FALSE(run.is_ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanExecutor, RefusesRelayOfAggregateDeliveredElsewhere) {
  PolygonCode pentagon(5);
  PlanExecutor executor(pentagon.layout());
  const auto data = random_data(pentagon, 32);
  auto store = store_without_nodes(pentagon, data, {});
  RepairPlan bogus;
  // A0 is delivered to node 3, but the relay at node 1 claims to fold it.
  bogus.aggregates.push_back(
      {2, 3, {{pentagon.layout().slots_on_node(2)[0], 1}}, {}});
  bogus.aggregates.push_back({1, kClientNode, {}, {{0, gf::Elem{1}}}});
  bogus.reconstructions.push_back(
      {0, Reconstruction::kClientSlot, {{1, 1}}, {}});
  const auto run = executor.execute(bogus, store);
  EXPECT_FALSE(run.is_ok());
  EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PlanExecutor, ExecutesHandBuiltRelayChain) {
  // Manual two-stage plan: N1 and N2 each hold a replica-distinct slot;
  // N1 aggregates its own slot with N2's send and forwards one block to
  // the client, which must equal slot(a) + slot(b).
  PolygonCode pentagon(5);
  PlanExecutor executor(pentagon.layout());
  const auto data = random_data(pentagon, 33);
  auto store = store_without_nodes(pentagon, data, {});
  const std::size_t slot_n2 = pentagon.layout().slots_on_node(2)[0];
  const std::size_t slot_n1 = pentagon.layout().slots_on_node(1)[0];
  RepairPlan plan;
  plan.aggregates.push_back({2, 1, {{slot_n2, 1}}, {}});
  plan.aggregates.push_back(
      {1, kClientNode, {{slot_n1, 1}}, {{0, gf::Elem{1}}}});
  plan.reconstructions.push_back(
      {0, Reconstruction::kClientSlot, {{1, 1}}, {}});
  auto run = executor.execute(plan, store);
  ASSERT_TRUE(run.is_ok());
  ASSERT_EQ(run->size(), 1u);
  Buffer expected = store.at(slot_n1);
  xor_into(expected, store.at(slot_n2));
  EXPECT_EQ((*run)[0], expected);
}

}  // namespace
}  // namespace dblrep::ec
