// Tests for the MTTDL engine: signature lumping validity, chain vs
// Monte-Carlo agreement, closed-form cross-checks, and the Table-1
// qualitative ordering.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "ec/local_polygon.h"
#include "ec/polygon.h"
#include "ec/raid_mirror.h"
#include "ec/registry.h"
#include "ec/replication.h"
#include "ec/rs.h"
#include "reliability/markov.h"

namespace dblrep::rel {
namespace {

using ec::NodeIndex;

/// Inflated-rate parameters where data loss happens fast enough for
/// Monte-Carlo cross-validation.
ReliabilityParams hot_params() {
  ReliabilityParams p;
  p.node_mtbf_hours = 100.0;
  p.node_mttr_hours = 20.0;
  p.system_nodes = 25;
  return p;
}

ReliabilityParams paper_params() {
  return ReliabilityParams{};  // defaults documented in params.h
}

// --------------------------------------------------------- signatures

TEST(Signature, PolygonLumpsByCountOnly) {
  ec::PolygonCode pentagon(5);
  EXPECT_EQ(failure_signature(pentagon, {0, 3}),
            failure_signature(pentagon, {1, 4}));
  EXPECT_NE(failure_signature(pentagon, {0}),
            failure_signature(pentagon, {0, 1}));
}

TEST(Signature, RaidMirrorDistinguishesPairsFromSingletons) {
  ec::RaidMirrorCode raidm(9);
  // {0,1} is a complete mirror pair; {0,2} is two singletons.
  EXPECT_NE(failure_signature(raidm, {0, 1}), failure_signature(raidm, {0, 2}));
  EXPECT_EQ(failure_signature(raidm, {0, 2}), failure_signature(raidm, {4, 6}));
  EXPECT_EQ(failure_signature(raidm, {0, 1}), failure_signature(raidm, {8, 9}));
}

TEST(Signature, LocalPolygonSortsLocalsAndFlagsGlobal) {
  ec::LocalPolygonCode code(7);
  EXPECT_EQ(failure_signature(code, {0, 1, 7}),
            failure_signature(code, {8, 9, 3}));  // (2,1) either way
  EXPECT_NE(failure_signature(code, {0, 1, 2}),
            failure_signature(code, {0, 1, 7}));
  EXPECT_NE(failure_signature(code, {0, 14}), failure_signature(code, {0, 1}));
}

TEST(Signature, IsOrbitInvariantForFatality) {
  // Every pair of same-signature subsets must agree on recoverability;
  // sample subsets of sizes 1..4 for each paper code.
  Rng rng(11);
  for (const auto& spec : ec::paper_code_specs()) {
    const auto code = ec::make_code(spec).value();
    std::map<Signature, bool> seen;
    for (int trial = 0; trial < 300; ++trial) {
      const std::size_t size = 1 + rng.next_below(4);
      const auto pick =
          rng.sample_without_replacement(code->num_nodes(),
                                         std::min(size, code->num_nodes()));
      std::set<NodeIndex> failed;
      for (auto v : pick) failed.insert(static_cast<NodeIndex>(v));
      const bool recoverable = code->is_recoverable(failed);
      const auto sig = failure_signature(*code, failed);
      const auto [it, inserted] = seen.emplace(sig, recoverable);
      EXPECT_EQ(it->second, recoverable)
          << spec << ": signature collision with differing fatality";
    }
  }
}

// ------------------------------------------------- chain sanity checks

TEST(GroupMarkovModel, TwoRepMatchesClosedForm) {
  // c=2, fatal at 2 failures. Known closed form for the birth-death chain:
  // MTTDL = (3*lambda + mu) / (2*lambda^2).
  ec::ReplicationCode two(2);
  ReliabilityParams p = hot_params();
  p.system_nodes = 2;
  GroupMarkovModel model(two, p);
  const double lambda = p.failure_rate_per_hour();
  const double mu = p.repair_rate_per_hour();
  const double expected = (3.0 * lambda + mu) / (2.0 * lambda * lambda);
  EXPECT_NEAR(model.mttdl_group_hours(), expected, expected * 1e-9);
}

TEST(GroupMarkovModel, ThreeRepMatchesClosedForm) {
  // Birth-death chain 0->1->2->loss with parallel repair:
  // states: q0 = 3l, q1 = 2l + m, q2 = l + 2m.
  // t2 = (1 + 2m t1)/q2, t1 = (1 + m t0 + 2l t2)/q1, t0 = 1/q0 + t1.
  ec::ReplicationCode three(3);
  ReliabilityParams p = hot_params();
  p.system_nodes = 3;
  GroupMarkovModel model(three, p);
  const double l = p.failure_rate_per_hour();
  const double m = p.repair_rate_per_hour();
  // Solve the 3x3 system by hand (substitution).
  // t0 = 1/(3l) + t1.
  // t1 (2l+m) = 1 + m t0 + 2l t2
  // t2 (l+2m) = 1 + 2m t1
  // Substitute t0 and t2:
  const double q1 = 2 * l + m, q2 = l + 2 * m;
  // t1 q1 = 1 + m (1/(3l) + t1) + 2l (1 + 2 m t1)/q2
  const double lhs = q1 - m - 4.0 * l * m / q2;
  const double rhs = 1.0 + m / (3.0 * l) + 2.0 * l / q2;
  const double t1 = rhs / lhs;
  const double t0 = 1.0 / (3.0 * l) + t1;
  EXPECT_NEAR(model.mttdl_group_hours(), t0, t0 * 1e-9);
}

TEST(GroupMarkovModel, StateCountsStaySmallUnderLumping) {
  ReliabilityParams p = paper_params();
  EXPECT_LE(GroupMarkovModel(*ec::make_code("pentagon").value(), p).num_states(),
            3u);
  EXPECT_LE(GroupMarkovModel(*ec::make_code("heptagon").value(), p).num_states(),
            3u);
  EXPECT_LE(GroupMarkovModel(*ec::make_code("raidm-11").value(), p).num_states(),
            40u);
  EXPECT_LE(
      GroupMarkovModel(*ec::make_code("heptagon-local").value(), p).num_states(),
      40u);
}

TEST(GroupMarkovModel, LumpedChainMatchesUnlumpedForPentagon) {
  // Compare against a brute-force chain over exact subsets by using the RS
  // fallback path: build a structurally identical code with no custom
  // signature. Easiest honest check: Monte Carlo below; here we verify the
  // pentagon chain against an independently derived closed form.
  // Pentagon: states 0,1,2 failed; any 3rd failure fatal.
  ec::PolygonCode pentagon(5);
  ReliabilityParams p = hot_params();
  GroupMarkovModel model(pentagon, p);
  const double l = p.failure_rate_per_hour();
  const double m = p.repair_rate_per_hour();
  const double q0 = 5 * l, q1 = 4 * l + m, q2 = 3 * l + 2 * m;
  // t2 = (1 + 2m t1)/q2 ; t1 = (1 + m t0 + 4l t2)/q1 ; t0 = 1/q0 + t1.
  const double lhs = q1 - m - 8.0 * l * m / q2;
  const double rhs = 1.0 + m / q0 + 4.0 * l / q2;
  const double t1 = rhs / lhs;
  const double t0 = 1.0 / q0 + t1;
  EXPECT_NEAR(model.mttdl_group_hours(), t0, t0 * 1e-9);
}

TEST(GroupMarkovModel, AgreesWithMonteCarloAtHotRates) {
  for (const char* spec : {"3-rep", "pentagon", "heptagon"}) {
    const auto code = ec::make_code(spec).value();
    ReliabilityParams p = hot_params();
    GroupMarkovModel chain(*code, p);
    const double mc = simulate_group_mttdl_hours(*code, p, 99, 4000);
    EXPECT_NEAR(mc, chain.mttdl_group_hours(), 0.08 * chain.mttdl_group_hours())
        << spec;
  }
}

TEST(GroupMarkovModel, MonteCarloAgreesForPairStructuredCodes) {
  const auto raidm = ec::make_code("raidm-9").value();
  ReliabilityParams p = hot_params();
  p.node_mttr_hours = 50.0;  // keep trials short: slow repair
  GroupMarkovModel chain(*raidm, p);
  const double mc = simulate_group_mttdl_hours(*raidm, p, 7, 1500);
  EXPECT_NEAR(mc, chain.mttdl_group_hours(), 0.1 * chain.mttdl_group_hours());
}

TEST(GroupMarkovModel, GroupsScaleSystemMttdl) {
  ec::ReplicationCode three(3);
  ReliabilityParams p = paper_params();
  GroupMarkovModel model(three, p);
  EXPECT_EQ(model.num_groups(), 8u);  // floor(25/3)
  EXPECT_NEAR(model.mttdl_system_years() * 8.0 * kHoursPerYear,
              model.mttdl_group_hours(), 1e-6 * model.mttdl_group_hours());
}

TEST(GroupMarkovModel, RejectsSystemSmallerThanCode) {
  ec::RaidMirrorCode raidm(11);  // needs 24 nodes
  ReliabilityParams p = paper_params();
  p.system_nodes = 20;
  EXPECT_THROW(GroupMarkovModel(raidm, p), ContractViolation);
}

// ------------------------------------------------ Table 1 reproduction

TEST(Table1, QualitativeOrderingOfTier2Codes) {
  // Within the 2-failure-tolerant family the paper's ordering is
  // heptagon < pentagon < 3-rep; this is parameter-robust.
  ReliabilityParams p = paper_params();
  const double hept =
      GroupMarkovModel(*ec::make_code("heptagon").value(), p).mttdl_system_years();
  const double pent =
      GroupMarkovModel(*ec::make_code("pentagon").value(), p).mttdl_system_years();
  const double rep3 =
      GroupMarkovModel(*ec::make_code("3-rep").value(), p).mttdl_system_years();
  EXPECT_LT(hept, pent);
  EXPECT_LT(pent, rep3);
}

TEST(Table1, QualitativeOrderingOfTier3Codes) {
  // raidm-11 < raidm-9 as in the paper (longer code, more fatal patterns).
  // Note: the paper also places heptagon-local above raidm-9; the exact
  // chain inverts that pair because (10,9) RAID+m has proportionally fewer
  // fatal 4-patterns (45 of 4845) than heptagon-local (140 of 1365) and
  // the paper's model constants are not disclosed. See docs/paper_map.md.
  ReliabilityParams p = paper_params();
  const double r11 =
      GroupMarkovModel(*ec::make_code("raidm-11").value(), p).mttdl_system_years();
  const double r9 =
      GroupMarkovModel(*ec::make_code("raidm-9").value(), p).mttdl_system_years();
  const double hl = GroupMarkovModel(*ec::make_code("heptagon-local").value(), p)
                        .mttdl_system_years();
  EXPECT_LT(r11, r9);
  // Both tier-3 schemes must beat every tier-2 scheme.
  const double rep3 =
      GroupMarkovModel(*ec::make_code("3-rep").value(), p).mttdl_system_years();
  EXPECT_GT(hl, rep3);
  EXPECT_GT(r9, rep3);
}

TEST(Table1, ThreeRepCalibrationLandsNearPaperValue) {
  // Default parameters are calibrated so 3-rep lands within ~3x of the
  // paper's 1.20e9 years (the paper's exact constants are not disclosed).
  ReliabilityParams p = paper_params();
  const double rep3 =
      GroupMarkovModel(*ec::make_code("3-rep").value(), p).mttdl_system_years();
  EXPECT_GT(rep3, 1.2e9 / 3.0);
  EXPECT_LT(rep3, 1.2e9 * 3.0);
}

TEST(Table1, HigherToleranceBeatsLowerToleranceAtPaperParams) {
  ReliabilityParams p = paper_params();
  const double hl = GroupMarkovModel(*ec::make_code("heptagon-local").value(), p)
                        .mttdl_system_years();
  const double rep3 =
      GroupMarkovModel(*ec::make_code("3-rep").value(), p).mttdl_system_years();
  EXPECT_GT(hl, rep3);  // the paper's headline: heptagon-local is best
}

TEST(Table1, StorageOverheadColumnMatchesPaperExactly) {
  EXPECT_NEAR(ec::make_code("3-rep").value()->params().storage_overhead(), 3.0,
              1e-12);
  EXPECT_NEAR(ec::make_code("pentagon").value()->params().storage_overhead(),
              2.2222, 5e-4);
  EXPECT_NEAR(ec::make_code("heptagon").value()->params().storage_overhead(),
              2.1, 1e-12);
  EXPECT_NEAR(
      ec::make_code("heptagon-local").value()->params().storage_overhead(),
      2.15, 1e-12);
  EXPECT_NEAR(ec::make_code("raidm-9").value()->params().storage_overhead(),
              2.2222, 5e-4);
  EXPECT_NEAR(ec::make_code("raidm-11").value()->params().storage_overhead(),
              2.1818, 5e-4);
}

TEST(Table1, CodeLengthColumnMatchesPaperExactly) {
  EXPECT_EQ(ec::make_code("3-rep").value()->params().num_nodes, 3u);
  EXPECT_EQ(ec::make_code("pentagon").value()->params().num_nodes, 5u);
  EXPECT_EQ(ec::make_code("heptagon").value()->params().num_nodes, 7u);
  EXPECT_EQ(ec::make_code("heptagon-local").value()->params().num_nodes, 15u);
  EXPECT_EQ(ec::make_code("raidm-9").value()->params().num_nodes, 20u);
  EXPECT_EQ(ec::make_code("raidm-11").value()->params().num_nodes, 24u);
}

// ------------------------------------------------ read-error ablation

TEST(ReadErrorAblation, BerTermOnlyEverHurts) {
  for (const char* spec : {"pentagon", "raidm-9", "heptagon-local"}) {
    const auto code = ec::make_code(spec).value();
    ReliabilityParams clean = paper_params();
    ReliabilityParams dirty = paper_params();
    dirty.block_read_error_prob = 2e-6;
    const double base = GroupMarkovModel(*code, clean).mttdl_system_years();
    const double with_ber = GroupMarkovModel(*code, dirty).mttdl_system_years();
    EXPECT_LT(with_ber, base) << spec;
  }
}

TEST(ReadErrorAblation, ReplicationIsImmuneToParityReadErrors) {
  // Replica repair is a plain copy; no parity reconstruction, no BER term.
  const auto code = ec::make_code("3-rep").value();
  ReliabilityParams clean = paper_params();
  ReliabilityParams dirty = paper_params();
  dirty.block_read_error_prob = 2e-6;
  EXPECT_NEAR(GroupMarkovModel(*code, dirty).mttdl_system_years(),
              GroupMarkovModel(*code, clean).mttdl_system_years(), 1e-3);
}

TEST(ParityReadBlocks, PentagonSharedBlockRepairReadsNineBlocks) {
  // Rebuilding the doubly-lost shared block reads one copy of each of the
  // 9 other distinct blocks (folded into 3 partial parities).
  ec::PolygonCode pentagon(5);
  const std::size_t reads = parity_read_blocks(pentagon, {0, 1}, 0);
  EXPECT_EQ(reads, 9u);
}

TEST(ParityReadBlocks, SingleFailureRepairIsCopyOnly) {
  ec::PolygonCode pentagon(5);
  EXPECT_EQ(parity_read_blocks(pentagon, {2}, 2), 0u);
  ec::RaidMirrorCode raidm(9);
  EXPECT_EQ(parity_read_blocks(raidm, {4}, 4), 0u);
}

}  // namespace
}  // namespace dblrep::rel
