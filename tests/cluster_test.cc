// Tests for the cluster layer: topology/racks, traffic metering, and the
// block catalog.
#include <gtest/gtest.h>

#include "cluster/catalog.h"
#include "cluster/topology.h"
#include "cluster/traffic.h"
#include "common/check.h"
#include "common/rng.h"
#include "ec/polygon.h"
#include "ec/registry.h"

namespace dblrep::cluster {
namespace {

TEST(Topology, PaperSetupsMatchSection4) {
  const Topology s1 = setup1_topology();
  EXPECT_EQ(s1.num_nodes, 25u);
  EXPECT_EQ(s1.num_racks, 1u);  // "all nodes configured to be in one rack"
  const Topology s2 = setup2_topology();
  EXPECT_EQ(s2.num_nodes, 9u);
}

TEST(Topology, RackAssignmentRoundRobins) {
  Topology t;
  t.num_nodes = 6;
  t.num_racks = 3;
  EXPECT_EQ(t.rack_of(0), 0);
  EXPECT_EQ(t.rack_of(4), 1);
  EXPECT_TRUE(t.same_rack(0, 3));
  EXPECT_FALSE(t.same_rack(0, 1));
  EXPECT_THROW(t.rack_of(6), ContractViolation);
}

TEST(TrafficMeter, CountsOnlyNetworkBytes) {
  const Topology t = setup1_topology();
  TrafficMeter meter(t);
  meter.record(0, 0, 1e6);  // local read: free
  EXPECT_DOUBLE_EQ(meter.total_bytes(), 0.0);
  meter.record(0, 1, 2e6);
  meter.record(1, 0, 3e6);
  EXPECT_DOUBLE_EQ(meter.total_bytes(), 5e6);
  EXPECT_DOUBLE_EQ(meter.node_sent_bytes(0), 2e6);
  EXPECT_DOUBLE_EQ(meter.node_received_bytes(0), 3e6);
}

TEST(TrafficMeter, TracksCrossRackSeparately) {
  Topology t;
  t.num_nodes = 4;
  t.num_racks = 2;
  TrafficMeter meter(t);
  meter.record(0, 2, 1e6);  // same rack (0 and 2 are rack 0)
  meter.record(0, 1, 1e6);  // cross rack
  EXPECT_DOUBLE_EQ(meter.total_bytes(), 2e6);
  EXPECT_DOUBLE_EQ(meter.cross_rack_bytes(), 1e6);
}

TEST(TrafficMeter, ClientDeliveryAndReset) {
  const Topology t = setup2_topology();
  TrafficMeter meter(t);
  meter.record_to_client(3, 7e6);
  EXPECT_DOUBLE_EQ(meter.total_bytes(), 7e6);
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.total_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(meter.node_sent_bytes(3), 0.0);
}

TEST(TrafficMeter, ConservationHoldsAcrossRandomWorkloads) {
  // Every recorded byte must land in exactly one bucket and the buckets
  // must reconcile with the independently-accumulated total and per-node
  // sums -- the accounting invariant the chaos harness asserts between
  // events. Exact equality is sound: whole byte counts far below 2^53.
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    Topology t;
    t.num_nodes = 4 + static_cast<std::size_t>(rng.next_below(20));
    t.num_racks = 1 + static_cast<std::size_t>(rng.next_below(4));
    TrafficMeter meter(t);
    for (int op = 0; op < 200; ++op) {
      const auto from = static_cast<NodeId>(rng.next_below(t.num_nodes));
      const double bytes = static_cast<double>(rng.next_below(1 << 20));
      if (rng.bernoulli(0.25)) {
        meter.record_to_client(from, bytes);
      } else {
        meter.record(from, static_cast<NodeId>(rng.next_below(t.num_nodes)),
                     bytes);
      }
    }
    EXPECT_EQ(meter.intra_rack_bytes() + meter.cross_rack_bytes() +
                  meter.client_bytes(),
              meter.total_bytes());
    double sent = 0, received = 0;
    for (std::size_t n = 0; n < t.num_nodes; ++n) {
      sent += meter.node_sent_bytes(static_cast<NodeId>(n));
      received += meter.node_received_bytes(static_cast<NodeId>(n));
    }
    EXPECT_EQ(sent, meter.total_bytes());
    EXPECT_EQ(received, meter.intra_rack_bytes() + meter.cross_rack_bytes());
    EXPECT_GE(meter.intra_rack_bytes(), 0.0);
    EXPECT_GE(meter.cross_rack_bytes(), 0.0);
    EXPECT_GE(meter.client_bytes(), 0.0);
  }
}

TEST(BlockCatalog, RegistersAndResolvesPentagonStripe) {
  const Topology t = setup1_topology();
  BlockCatalog catalog(t);
  ec::PolygonCode pentagon(5);
  const auto id = catalog.register_stripe(pentagon, {10, 11, 12, 13, 14});
  ASSERT_TRUE(id.is_ok());
  EXPECT_EQ(catalog.num_stripes(), 1u);
  // Symbol on edge {0,1} of the code maps to cluster nodes 10 and 11.
  const auto replicas = catalog.replica_nodes(*id, pentagon.edge_symbol(0, 1));
  EXPECT_EQ(replicas, (std::vector<NodeId>{10, 11}));
  // Node 10 hosts 4 slots of this stripe.
  EXPECT_EQ(catalog.slots_on_node(10).size(), 4u);
  EXPECT_TRUE(catalog.slots_on_node(0).empty());
}

TEST(BlockCatalog, RejectsBadGroups) {
  const Topology t = setup1_topology();
  BlockCatalog catalog(t);
  ec::PolygonCode pentagon(5);
  EXPECT_FALSE(catalog.register_stripe(pentagon, {0, 1, 2}).is_ok());
  EXPECT_FALSE(catalog.register_stripe(pentagon, {0, 1, 2, 3, 3}).is_ok());
  EXPECT_FALSE(catalog.register_stripe(pentagon, {0, 1, 2, 3, 99}).is_ok());
}

TEST(BlockCatalog, FailedInStripeMapsClusterToCodeIndices) {
  const Topology t = setup1_topology();
  BlockCatalog catalog(t);
  ec::PolygonCode pentagon(5);
  const auto id = catalog.register_stripe(pentagon, {20, 5, 9, 3, 17});
  ASSERT_TRUE(id.is_ok());
  const auto failed = catalog.failed_in_stripe(*id, {5, 17, 4});
  EXPECT_EQ(failed, (std::set<ec::NodeIndex>{1, 4}));
}

TEST(BlockCatalog, UnregisterTombstonesStripe) {
  const Topology t = setup1_topology();
  BlockCatalog catalog(t);
  ec::PolygonCode pentagon(5);
  const auto a = catalog.register_stripe(pentagon, {0, 1, 2, 3, 4});
  const auto b = catalog.register_stripe(pentagon, {5, 6, 7, 8, 9});
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(catalog.num_stripes(), 2u);
  ASSERT_TRUE(catalog.unregister_stripe(*a).is_ok());
  EXPECT_EQ(catalog.num_stripes(), 1u);
  EXPECT_FALSE(catalog.is_registered(*a));
  EXPECT_TRUE(catalog.is_registered(*b));
  // Node listings no longer mention the dead stripe.
  EXPECT_TRUE(catalog.slots_on_node(0).empty());
  EXPECT_TRUE(catalog.stripes_on_node(2).empty());
  // Double delete and access to a tombstone are rejected.
  EXPECT_FALSE(catalog.unregister_stripe(*a).is_ok());
  EXPECT_THROW(catalog.stripe(*a), ContractViolation);
  // New registrations keep working and get fresh ids.
  const auto c = catalog.register_stripe(pentagon, {0, 1, 2, 3, 4});
  ASSERT_TRUE(c.is_ok());
  EXPECT_NE(*c, *a);
}

TEST(BlockCatalog, StripesOnNodeDeduplicates) {
  const Topology t = setup1_topology();
  BlockCatalog catalog(t);
  ec::PolygonCode pentagon(5);
  ASSERT_TRUE(catalog.register_stripe(pentagon, {0, 1, 2, 3, 4}).is_ok());
  ASSERT_TRUE(catalog.register_stripe(pentagon, {0, 5, 6, 7, 8}).is_ok());
  const auto stripes = catalog.stripes_on_node(0);
  EXPECT_EQ(stripes.size(), 2u);  // node 0 hosts 4 slots of each stripe
}

}  // namespace
}  // namespace dblrep::cluster
