// Tests for StripeLayout and the per-code layouts (the paper's Fig. 1).
#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "ec/layout.h"
#include "ec/local_polygon.h"
#include "ec/polygon.h"
#include "ec/raid_mirror.h"
#include "ec/replication.h"

namespace dblrep::ec {
namespace {

TEST(StripeLayout, BasicMaps) {
  // Two symbols, symbol 0 replicated on nodes 0 and 1, symbol 1 on node 2.
  StripeLayout layout(3, 2, {0, 1, 2}, {0, 0, 1});
  EXPECT_EQ(layout.num_slots(), 3u);
  EXPECT_EQ(layout.node_of_slot(1), 1);
  EXPECT_EQ(layout.symbol_of_slot(1), 0u);
  EXPECT_EQ(layout.slots_of_symbol(0), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(layout.slots_on_node(2), (std::vector<std::size_t>{2}));
  EXPECT_EQ(layout.symbol_replication(0), 2u);
  EXPECT_EQ(layout.symbol_replication(1), 1u);
  EXPECT_EQ(layout.max_slots_per_node(), 1u);
}

TEST(StripeLayout, ReplicasOnSameNodeRejected) {
  // Both copies of symbol 0 on node 0 violates the placement invariant.
  EXPECT_THROW(StripeLayout(2, 1, {0, 0}, {0, 0}), ContractViolation);
}

TEST(StripeLayout, SymbolWithoutSlotRejected) {
  EXPECT_THROW(StripeLayout(2, 2, {0, 1}, {0, 0}), ContractViolation);
}

TEST(StripeLayout, MismatchedVectorsRejected) {
  EXPECT_THROW(StripeLayout(2, 1, {0, 1}, {0}), ContractViolation);
}

// ------------------------------------------------------------ pentagon

TEST(PentagonLayout, MatchesPaperFigure1a) {
  // 9 data + 1 parity, doubled over 5 nodes, 4 blocks each.
  PolygonCode pentagon(5);
  const auto& layout = pentagon.layout();
  EXPECT_EQ(layout.num_nodes(), 5u);
  EXPECT_EQ(layout.num_symbols(), 10u);
  EXPECT_EQ(layout.num_slots(), 20u);
  for (NodeIndex n = 0; n < 5; ++n) {
    EXPECT_EQ(layout.slots_on_node(n).size(), 4u) << "node " << n;
  }
  // Every symbol exactly twice, on distinct nodes.
  for (std::size_t s = 0; s < 10; ++s) {
    EXPECT_EQ(layout.symbol_replication(s), 2u);
  }
}

TEST(PentagonLayout, EveryNodePairSharesExactlyOneSymbol) {
  // The K5 edge structure: |blocks(Ni) ∩ blocks(Nj)| == 1 for i != j.
  PolygonCode pentagon(5);
  const auto& layout = pentagon.layout();
  for (NodeIndex a = 0; a < 5; ++a) {
    std::set<std::size_t> syms_a;
    for (auto slot : layout.slots_on_node(a)) {
      syms_a.insert(layout.symbol_of_slot(slot));
    }
    for (NodeIndex b = a + 1; b < 5; ++b) {
      int shared = 0;
      for (auto slot : layout.slots_on_node(b)) {
        if (syms_a.contains(layout.symbol_of_slot(slot))) ++shared;
      }
      EXPECT_EQ(shared, 1) << "pair " << a << "," << b;
      EXPECT_EQ(layout.symbol_of_slot(
                    layout.slots_of_symbol(pentagon.shared_symbol(a, b))[0]),
                pentagon.shared_symbol(a, b));
    }
  }
}

TEST(PolygonCode, EdgeSymbolRoundTrip) {
  for (int n : {3, 5, 7, 9}) {
    PolygonCode code(n);
    std::set<std::size_t> seen;
    for (NodeIndex a = 0; a < n; ++a) {
      for (NodeIndex b = a + 1; b < n; ++b) {
        const std::size_t sym = code.edge_symbol(a, b);
        EXPECT_EQ(code.edge_symbol(b, a), sym) << "symmetry";
        EXPECT_LT(sym, PolygonCode::num_edges(n));
        EXPECT_TRUE(seen.insert(sym).second) << "duplicate edge index";
        const auto [x, y] = code.symbol_edge(sym);
        EXPECT_EQ(x, a);
        EXPECT_EQ(y, b);
      }
    }
    EXPECT_EQ(seen.size(), PolygonCode::num_edges(n));
  }
}

TEST(PolygonCode, SymbolsLiveOnTheirEdgeEndpoints) {
  PolygonCode heptagon(7);
  const auto& layout = heptagon.layout();
  for (std::size_t sym = 0; sym < layout.num_symbols(); ++sym) {
    const auto [a, b] = heptagon.symbol_edge(sym);
    const auto& slots = layout.slots_of_symbol(sym);
    ASSERT_EQ(slots.size(), 2u);
    const std::set<NodeIndex> nodes{layout.node_of_slot(slots[0]),
                                    layout.node_of_slot(slots[1])};
    EXPECT_EQ(nodes, (std::set<NodeIndex>{a, b}));
  }
}

// ------------------------------------------------------------ heptagon

TEST(HeptagonLayout, MatchesPaperSection21) {
  PolygonCode heptagon(7);
  EXPECT_EQ(heptagon.params().data_blocks, 20u);
  EXPECT_EQ(heptagon.params().stored_blocks, 42u);
  EXPECT_EQ(heptagon.params().num_nodes, 7u);
  for (NodeIndex n = 0; n < 7; ++n) {
    EXPECT_EQ(heptagon.layout().slots_on_node(n).size(), 6u);
  }
}

// ------------------------------------------------------- heptagon-local

TEST(HeptagonLocalLayout, MatchesPaperSection22) {
  // 40 data -> 86 blocks over 15 nodes.
  LocalPolygonCode code(7);
  EXPECT_EQ(code.params().data_blocks, 40u);
  EXPECT_EQ(code.params().stored_blocks, 86u);
  EXPECT_EQ(code.params().num_nodes, 15u);
  EXPECT_EQ(code.params().num_symbols, 44u);  // 40 data + 2 local + 2 global
  // 14 polygon nodes with 6 blocks, global node with 2.
  for (NodeIndex n = 0; n < 14; ++n) {
    EXPECT_EQ(code.layout().slots_on_node(n).size(), 6u) << "node " << n;
  }
  EXPECT_EQ(code.layout().slots_on_node(code.global_node()).size(), 2u);
}

TEST(HeptagonLocalLayout, RackMapping) {
  LocalPolygonCode code(7);
  for (NodeIndex n = 0; n < 7; ++n) EXPECT_EQ(code.rack_of_node(n), 0);
  for (NodeIndex n = 7; n < 14; ++n) EXPECT_EQ(code.rack_of_node(n), 1);
  EXPECT_EQ(code.rack_of_node(14), 2);
  EXPECT_EQ(code.local_of_node(3), 0);
  EXPECT_EQ(code.local_of_node(10), 1);
  EXPECT_EQ(code.local_of_node(14), -1);
}

TEST(HeptagonLocalLayout, GlobalSymbolsUnreplicatedOnGlobalNode) {
  LocalPolygonCode code(7);
  const auto [g1, g2] = code.global_symbols();
  for (std::size_t g : {g1, g2}) {
    const auto& slots = code.layout().slots_of_symbol(g);
    ASSERT_EQ(slots.size(), 1u);
    EXPECT_EQ(code.layout().node_of_slot(slots[0]), code.global_node());
  }
}

TEST(HeptagonLocalLayout, LocalSymbolsStayInTheirRack) {
  LocalPolygonCode code(7);
  const auto& layout = code.layout();
  for (std::size_t sym = 0; sym < 42; ++sym) {
    // Symbols 0..19 and the first local parity belong to rack 0; symbols
    // 20..39 and the second local parity to rack 1.
    const bool first_local =
        sym < 20 || sym == code.local_parity_symbol(0);
    const int want_rack = first_local ? 0 : 1;
    if (sym >= 40 && sym != code.local_parity_symbol(0) &&
        sym != code.local_parity_symbol(1)) {
      continue;  // global symbols, checked elsewhere
    }
    for (auto slot : layout.slots_of_symbol(sym)) {
      EXPECT_EQ(code.rack_of_node(layout.node_of_slot(slot)), want_rack)
          << "symbol " << sym;
    }
  }
}

// ------------------------------------------------------------- RAID+m

TEST(RaidMirrorLayout, OneBlockPerNode) {
  RaidMirrorCode code(9);  // the paper's (10,9) RAID+m
  EXPECT_EQ(code.params().num_nodes, 20u);
  EXPECT_EQ(code.params().stored_blocks, 20u);
  EXPECT_EQ(code.params().data_blocks, 9u);
  for (NodeIndex n = 0; n < 20; ++n) {
    EXPECT_EQ(code.layout().slots_on_node(n).size(), 1u);
  }
  for (std::size_t s = 0; s < 10; ++s) {
    EXPECT_EQ(code.layout().symbol_replication(s), 2u);
    const auto [a, b] = code.mirror_nodes(s);
    EXPECT_EQ(b, a + 1);
  }
}

// --------------------------------------------------------- replication

TEST(ReplicationLayout, SimpleRepStripes) {
  ReplicationCode three(3);
  EXPECT_EQ(three.params().num_nodes, 3u);
  EXPECT_EQ(three.params().data_blocks, 1u);
  EXPECT_EQ(three.layout().symbol_replication(0), 3u);
  EXPECT_EQ(three.params().fault_tolerance, 2);
}

}  // namespace
}  // namespace dblrep::ec
