// Tests for task-assignment: scheduler correctness (capacity, locality
// flags), optimality of max-matching, dominance relations (MM >= peeling
// and MM >= DS in local count), workload construction, and the Fig. 3
// qualitative shapes (locality ordering across codes and slot counts).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "ec/registry.h"
#include "sched/locality_sim.h"
#include "sched/problem.h"
#include "sched/schedulers.h"
#include "sched/workload.h"

namespace dblrep::sched {
namespace {

AssignmentProblem tiny_problem() {
  // 3 nodes, 1 slot each; tasks: A on {0,1}, B on {0}, C on {1}.
  // Max matching: B->0, C->1, A->2(remote)? A can go 0/1 but both taken ->
  // optimal local = 2... actually A->0, B impossible... best local = 2.
  AssignmentProblem p;
  p.num_nodes = 3;
  p.slots_per_node = 1;
  p.tasks = {TaskInfo{{0, 1}, 0}, TaskInfo{{0}, 0}, TaskInfo{{1}, 0}};
  return p;
}

TEST(MaxMatching, SolvesTinyInstanceOptimally) {
  EXPECT_EQ(max_local_tasks(tiny_problem()), 2u);
}

TEST(MaxMatching, AssignmentAchievesTheMatchingValue) {
  Rng rng(1);
  auto p = tiny_problem();
  MaxMatchingScheduler mm;
  const auto a = mm.assign(p, rng);
  EXPECT_EQ(a.local_count(), 2u);
  EXPECT_EQ(a.assigned_count(), 3u);  // remote fill places the third task
}

TEST(MaxMatching, PerfectWhenCapacitySuffices) {
  // Each task exclusive to its own node, slots ample.
  AssignmentProblem p;
  p.num_nodes = 4;
  p.slots_per_node = 2;
  for (int n = 0; n < 4; ++n) {
    p.tasks.push_back(TaskInfo{{n}, 0});
    p.tasks.push_back(TaskInfo{{n}, 0});
  }
  EXPECT_EQ(max_local_tasks(p), 8u);
}

TEST(MaxMatching, RespectsSlotCapacity) {
  // 5 tasks all local only to node 0 with 2 slots.
  AssignmentProblem p;
  p.num_nodes = 2;
  p.slots_per_node = 2;
  for (int i = 0; i < 5; ++i) p.tasks.push_back(TaskInfo{{0}, 0});
  EXPECT_EQ(max_local_tasks(p), 2u);
  Rng rng(2);
  MaxMatchingScheduler mm;
  const auto a = mm.assign(p, rng);  // check_assignment inside enforces caps
  EXPECT_EQ(a.local_count(), 2u);
  // 4 slots total, 5 tasks: one stays unassigned.
  EXPECT_EQ(a.assigned_count(), 4u);
}

TEST(DelayScheduler, AllTasksPlacedUnderCapacity) {
  Rng rng(3);
  const auto code = ec::make_code("pentagon").value();
  Rng wl_rng(4);
  const auto workload = make_workload(*code, 25, 2, 50, wl_rng);
  DelayScheduler ds;
  const auto a = ds.assign(workload.problem, rng);
  EXPECT_EQ(a.assigned_count(), 50u);
}

TEST(DelayScheduler, PerfectLocalityWhenTrivial) {
  // One task per node, each local to a distinct node.
  AssignmentProblem p;
  p.num_nodes = 5;
  p.slots_per_node = 1;
  for (int n = 0; n < 5; ++n) p.tasks.push_back(TaskInfo{{n}, 0});
  Rng rng(5);
  DelayScheduler ds;
  const auto a = ds.assign(p, rng);
  EXPECT_EQ(a.local_count(), 5u);
}

TEST(DelayScheduler, ZeroBudgetDegradesLocality) {
  // With no patience the scheduler fires head-of-line tasks at whichever
  // node asks first; locality must not exceed the patient variant.
  const auto code = ec::make_code("heptagon").value();
  Rng wl_rng(6);
  const auto workload = make_workload(*code, 25, 2, 50, wl_rng);
  double patient_total = 0, eager_total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Rng r1(100 + trial), r2(100 + trial);
    DelayScheduler patient;  // default sweep budget
    DelayScheduler eager(0);
    patient_total += patient.assign(workload.problem, r1).locality();
    eager_total += eager.assign(workload.problem, r2).locality();
  }
  EXPECT_GE(patient_total, eager_total);
}

TEST(Peeling, NeverBeatsMaxMatchingAndPlacesEverything) {
  for (const char* spec : {"2-rep", "pentagon", "heptagon"}) {
    const auto code = ec::make_code(spec).value();
    for (int trial = 0; trial < 10; ++trial) {
      Rng wl_rng(trial * 7 + 1);
      const auto workload = make_workload(*code, 25, 4, 100, wl_rng);
      Rng rng(trial);
      PeelingScheduler peeling;
      const auto a = peeling.assign(workload.problem, rng);
      EXPECT_EQ(a.assigned_count(), 100u);
      EXPECT_LE(a.local_count(), max_local_tasks(workload.problem)) << spec;
    }
  }
}

TEST(Peeling, HandlesForcedMovesFirst) {
  // Task A has one option (node 0); task B has two (0 or 1). Peeling must
  // give node 0 to A, routing B to node 1 -> both local.
  AssignmentProblem p;
  p.num_nodes = 2;
  p.slots_per_node = 1;
  p.tasks = {TaskInfo{{0, 1}, 0}, TaskInfo{{0}, 1}};
  Rng rng(8);
  PeelingScheduler peeling;
  const auto a = peeling.assign(p, rng);
  EXPECT_EQ(a.local_count(), 2u);
  EXPECT_EQ(a.task_node[1], 0);
  EXPECT_EQ(a.task_node[0], 1);
}

TEST(DelayScheduler, GreedyCanMissWhatPeelingCatches) {
  // The same instance shows why degree-guided assignment matters: a greedy
  // scheduler that hands node 0 to task A strands task B.
  AssignmentProblem p;
  p.num_nodes = 2;
  p.slots_per_node = 1;
  p.tasks = {TaskInfo{{0, 1}, 0}, TaskInfo{{0}, 1}};
  // Count DS outcomes over many heartbeat orderings; it must sometimes
  // (but not always) lose to peeling's guaranteed 2.
  int total_local = 0;
  for (int trial = 0; trial < 64; ++trial) {
    Rng rng(trial);
    DelayScheduler ds;
    total_local += static_cast<int>(ds.assign(p, rng).local_count());
  }
  EXPECT_LE(total_local, 2 * 64);
  EXPECT_GE(total_local, 64);  // never worse than 1 local task
}

// ------------------------------------------------------------- workload

TEST(Workload, TaskCountAndLocationsComeFromTheCode) {
  const auto pentagon = ec::make_code("pentagon").value();
  Rng rng(9);
  const auto workload = make_workload(*pentagon, 25, 2, 23, rng);
  EXPECT_EQ(workload.problem.tasks.size(), 23u);
  // 23 tasks = 2 full stripes (9+9) + 5 of the third.
  EXPECT_EQ(workload.stripes.size(), 3u);
  for (const auto& task : workload.problem.tasks) {
    EXPECT_EQ(task.locations.size(), 2u);  // double replication
    EXPECT_NE(task.locations[0], task.locations[1]);
    for (NodeId node : task.locations) {
      EXPECT_GE(node, 0);
      EXPECT_LT(node, 25);
    }
  }
}

TEST(Workload, ReplicationTasksGetRLocations) {
  const auto rep3 = ec::make_code("3-rep").value();
  Rng rng(10);
  const auto workload = make_workload(*rep3, 25, 2, 10, rng);
  for (const auto& task : workload.problem.tasks) {
    EXPECT_EQ(task.locations.size(), 3u);
  }
  // Each replication "stripe" is a single block.
  EXPECT_EQ(workload.stripes.size(), 10u);
}

TEST(Workload, PlacementGroupsAreValidNodeSubsets) {
  const auto heptagon = ec::make_code("heptagon").value();
  Rng rng(11);
  const auto workload = make_workload(*heptagon, 25, 4, 60, rng);
  for (const auto& stripe : workload.stripes) {
    EXPECT_EQ(stripe.group.size(), 7u);
    std::set<NodeId> unique(stripe.group.begin(), stripe.group.end());
    EXPECT_EQ(unique.size(), 7u);
  }
}

TEST(Workload, LoadConversion) {
  EXPECT_EQ(tasks_for_load(1.0, 25, 2), 50u);
  EXPECT_EQ(tasks_for_load(0.625, 100, 4), 250u);  // the paper's example
  EXPECT_EQ(tasks_for_load(0.25, 25, 2), 13u);     // rounds to nearest
}

// --------------------------------------------------- Fig. 3 shape checks

double sweep_locality_at(const std::string& spec, Scheduler& sched, int mu,
                         double load) {
  const auto code = ec::make_code(spec).value();
  LocalitySweepConfig config;
  config.slots_per_node = mu;
  config.loads = {load};
  config.trials = 30;
  return run_locality_sweep(*code, sched, config)[0].mean_locality;
}

TEST(Fig3Shape, TwoRepStaysNearPerfectUnderMaxMatching) {
  // Even the optimal matching dips slightly below 100% at full load: 50
  // tasks with 2 random choices each on 25 nodes x 2 slots is a loaded
  // random bipartite graph. The paper's Fig. 3 shows the same small dip.
  MaxMatchingScheduler mm;
  EXPECT_GT(sweep_locality_at("2-rep", mm, 2, 1.0), 0.90);
  EXPECT_GT(sweep_locality_at("2-rep", mm, 2, 0.5), 0.97);
}

TEST(Fig3Shape, CodedSchemesLoseLocalityAtTwoSlotsFullLoad) {
  // The paper's central observation: block concentration hurts at mu = 2.
  MaxMatchingScheduler mm;
  const double rep = sweep_locality_at("2-rep", mm, 2, 1.0);
  const double pent = sweep_locality_at("pentagon", mm, 2, 1.0);
  const double hept = sweep_locality_at("heptagon", mm, 2, 1.0);
  EXPECT_LT(pent, rep - 0.02);
  EXPECT_LT(hept, pent - 0.02);  // heptagon concentrates more, suffers more
}

TEST(Fig3Shape, MoreSlotsRestoreLocality) {
  MaxMatchingScheduler mm;
  const double mu2 = sweep_locality_at("heptagon", mm, 2, 1.0);
  const double mu4 = sweep_locality_at("heptagon", mm, 4, 1.0);
  const double mu8 = sweep_locality_at("heptagon", mm, 8, 1.0);
  EXPECT_LT(mu2, mu4);
  EXPECT_LE(mu4, mu8 + 0.01);
  EXPECT_GT(mu8, 0.9);  // the paper: > 90% at 100% load with 8 slots
}

TEST(Fig3Shape, LocalityDegradesWithLoad) {
  MaxMatchingScheduler mm;
  const double low = sweep_locality_at("pentagon", mm, 2, 0.25);
  const double high = sweep_locality_at("pentagon", mm, 2, 1.0);
  EXPECT_GE(low, high);
}

TEST(Fig3Shape, SchedulerOrderingDelayBelowPeelingBelowMatching) {
  // The bottom-right panel of Fig. 3: peeling lands between the delay
  // scheduler and the max-matching benchmark at mu = 4.
  DelayScheduler ds;
  PeelingScheduler peel;
  MaxMatchingScheduler mm;
  for (const char* spec : {"pentagon", "heptagon"}) {
    const double l_ds = sweep_locality_at(spec, ds, 4, 1.0);
    const double l_peel = sweep_locality_at(spec, peel, 4, 1.0);
    const double l_mm = sweep_locality_at(spec, mm, 4, 1.0);
    EXPECT_LE(l_ds, l_peel + 0.02) << spec;
    EXPECT_LE(l_peel, l_mm + 1e-9) << spec;
  }
}

TEST(Fig3Shape, RaidMirrorLocalityTracksTwoRep) {
  // Section 3.2: "the locality of the 2-rep systems is indicative of the
  // locality of any of the RAID+m solutions" -- RAID+m spreads one block
  // per node, so its task graph looks like 2-rep's (in fact its regular
  // pair structure matches slightly *better* than random pairs).
  MaxMatchingScheduler mm;
  const double rep2 = sweep_locality_at("2-rep", mm, 2, 1.0);
  const double raidm = sweep_locality_at("raidm-9", mm, 2, 1.0);
  EXPECT_GE(raidm, rep2 - 0.02);
  EXPECT_GT(rep2, 0.9);
  EXPECT_GT(raidm, 0.9);
  // And both sit far above the array codes at the same operating point.
  const double hept = sweep_locality_at("heptagon", mm, 2, 1.0);
  EXPECT_GT(raidm, hept + 0.2);
}

TEST(Schedulers, HonorPerNodeCapacityOverrides) {
  // Down nodes (0 slots) must receive no tasks under every scheduler.
  AssignmentProblem p;
  p.num_nodes = 4;
  p.slots_per_node = 2;
  p.node_slots = {0, 2, 2, 2};
  for (int i = 0; i < 5; ++i) p.tasks.push_back(TaskInfo{{0, 1}, 0});
  DelayScheduler ds;
  PeelingScheduler peel;
  MaxMatchingScheduler mm;
  for (Scheduler* s : std::vector<Scheduler*>{&ds, &peel, &mm}) {
    Rng rng(17);
    const auto a = s->assign(p, rng);
    for (std::size_t t = 0; t < p.tasks.size(); ++t) {
      EXPECT_NE(a.task_node[t], 0) << s->name();
    }
    // Node 1 (2 slots) serves at most 2 of the 5 local-hungry tasks.
    EXPECT_LE(a.local_count(), 2u) << s->name();
  }
}

TEST(Fig3Shape, SweepProducesOnePointPerLoad) {
  const auto code = ec::make_code("pentagon").value();
  MaxMatchingScheduler mm;
  LocalitySweepConfig config;
  config.trials = 3;
  const auto points = run_locality_sweep(*code, mm, config);
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(points[i].load, config.loads[i]);
    EXPECT_GE(points[i].mean_locality, 0.0);
    EXPECT_LE(points[i].mean_locality, 1.0);
  }
}

}  // namespace
}  // namespace dblrep::sched
