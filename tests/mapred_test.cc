// Tests for the Terasort simulator: metric sanity, the Fig. 4/5 shape
// claims from Section 4.1, and failure-injected degraded reads.
#include <gtest/gtest.h>

#include "ec/registry.h"
#include "mapred/terasort_sim.h"
#include "sched/schedulers.h"

namespace dblrep::mapred {
namespace {

JobMetrics run(const std::string& spec, JobConfig config, double load,
               int trials = 4) {
  const auto code = ec::make_code(spec).value();
  config.load = load;
  config.trials = trials;
  sched::DelayScheduler scheduler;
  return run_terasort(*code, scheduler, config);
}

TEST(Terasort, MetricsAreFiniteAndInRange) {
  const auto metrics = run("pentagon", setup1_config(), 1.0);
  EXPECT_GT(metrics.job_seconds, 0.0);
  EXPECT_LT(metrics.job_seconds, 1000.0);
  EXPECT_GE(metrics.locality, 0.0);
  EXPECT_LE(metrics.locality, 1.0);
  EXPECT_GT(metrics.map_input_traffic_bytes, 0.0);
  EXPECT_EQ(metrics.degraded_read_tasks, 0.0);
  EXPECT_EQ(metrics.unrunnable_tasks, 0.0);
}

TEST(Terasort, JobTimeLandsInThePaperBand) {
  // Fig. 4 job times range ~70-110 s across codes and loads.
  for (const char* spec : {"3-rep", "2-rep", "pentagon", "heptagon"}) {
    for (double load : {0.5, 0.75, 1.0}) {
      const auto metrics = run(spec, setup1_config(), load);
      EXPECT_GT(metrics.job_seconds, 60.0) << spec << " @ " << load;
      EXPECT_LT(metrics.job_seconds, 130.0) << spec << " @ " << load;
    }
  }
}

TEST(Terasort, Fig4TwoRepCloseToThreeRepAtModerateLoad) {
  // Conclusion (i): "At moderate loads, the performance of 2-rep is very
  // close to that of 3-rep."
  const auto rep2 = run("2-rep", setup1_config(), 0.5, 8);
  const auto rep3 = run("3-rep", setup1_config(), 0.5, 8);
  EXPECT_NEAR(rep2.job_seconds, rep3.job_seconds,
              0.08 * rep3.job_seconds);
  EXPECT_NEAR(rep2.locality, rep3.locality, 0.08);
}

TEST(Terasort, Fig4LocalityOrderingMatchesSimulation) {
  // Conclusion (ii): experimental locality trends match Fig. 3 -- at 2 map
  // slots and full load: replication > pentagon > heptagon.
  const auto rep2 = run("2-rep", setup1_config(), 1.0, 8);
  const auto pent = run("pentagon", setup1_config(), 1.0, 8);
  const auto hept = run("heptagon", setup1_config(), 1.0, 8);
  EXPECT_GT(rep2.locality, pent.locality);
  EXPECT_GT(pent.locality, hept.locality);
}

TEST(Terasort, Fig4TrafficTracksLocalityLoss) {
  // Conclusion (iii): excess traffic vs 2-rep is almost entirely the
  // locality gap times the block size.
  const auto rep2 = run("2-rep", setup1_config(), 1.0, 8);
  const auto hept = run("heptagon", setup1_config(), 1.0, 8);
  const double tasks = 50.0;  // 25 nodes x 2 slots at 100% load
  const double expected_excess =
      (rep2.locality - hept.locality) * tasks * 128e6;
  const double measured_excess =
      hept.map_input_traffic_bytes - rep2.map_input_traffic_bytes;
  EXPECT_NEAR(measured_excess, expected_excess, 0.25 * expected_excess);
}

TEST(Terasort, Fig4PentagonSlowerAtTwoSlotsFullLoad) {
  // Conclusion (iv) first half: substantial performance loss with 2 cores.
  const auto rep2 = run("2-rep", setup1_config(), 1.0, 8);
  const auto pent = run("pentagon", setup1_config(), 1.0, 8);
  EXPECT_GT(pent.job_seconds, rep2.job_seconds + 2.0);
  EXPECT_GT(pent.map_input_traffic_bytes,
            1.5 * rep2.map_input_traffic_bytes);
}

TEST(Terasort, Fig5PentagonNearTwoRepWithFourSlots) {
  // Conclusion (iv) second half: with 4 cores the pentagon is close to
  // 2-rep even at 75% load.
  const auto rep2 = run("2-rep", setup2_config(), 0.75, 8);
  const auto pent = run("pentagon", setup2_config(), 0.75, 8);
  EXPECT_NEAR(pent.job_seconds, rep2.job_seconds, 0.10 * rep2.job_seconds);
  EXPECT_GT(pent.locality, 0.8);
}

TEST(Terasort, Fig5TrafficScaleMatchesPaper)
{
  // Set-up 2 traffic peaks around a few GB at full load (512 MB blocks).
  const auto pent = run("pentagon", setup2_config(), 1.0, 8);
  EXPECT_GT(pent.map_input_traffic_bytes, 0.3e9);
  EXPECT_LT(pent.map_input_traffic_bytes, 8e9);
}

TEST(Terasort, TrafficGrowsWithLoad) {
  const auto low = run("pentagon", setup1_config(), 0.5, 8);
  const auto high = run("pentagon", setup1_config(), 1.0, 8);
  EXPECT_LE(low.map_input_traffic_bytes, high.map_input_traffic_bytes * 1.05);
  EXPECT_LE(low.job_seconds, high.job_seconds + 1.0);
}

TEST(Terasort, ShuffleBytesMatchTerasortIdentity) {
  // Terasort shuffles its whole input; (1 - 1/N) of it crosses the net.
  const auto metrics = run("2-rep", setup1_config(), 1.0, 2);
  const double input = 50.0 * 128e6;
  EXPECT_NEAR(metrics.shuffle_traffic_bytes, input * (1.0 - 1.0 / 25.0),
              1e-3 * input);
}

// ------------------------------------------------- failure injection

TEST(TerasortFailures, SingleNodeFailureUsesReplicasNotRepair) {
  // With one node down, every block still has a live replica: no degraded
  // reads, no unrunnable tasks.
  JobConfig config = setup1_config();
  config.down_nodes = {3};
  const auto metrics = run("pentagon", config, 0.75, 4);
  EXPECT_EQ(metrics.degraded_read_tasks, 0.0);
  EXPECT_EQ(metrics.unrunnable_tasks, 0.0);
}

TEST(TerasortFailures, DoubleFailureTriggersOnTheFlyRepair) {
  // Two down nodes occasionally co-host both replicas of a block; those
  // tasks must be served by partial-parity degraded reads, never dropped.
  JobConfig config = setup1_config();
  config.down_nodes = {3, 7};
  config.seed = 5;
  double degraded_total = 0;
  const auto metrics = run("pentagon", config, 1.0, 20);
  degraded_total += metrics.degraded_read_tasks;
  EXPECT_EQ(metrics.unrunnable_tasks, 0.0);  // pentagon tolerates 2 failures
  EXPECT_GT(degraded_total, 0.0);            // some stripes hit both nodes
}

TEST(TerasortFailures, DegradedReadsCostLessWithPentagonThanRaidMirror) {
  // Section 3.1's claim, observed end-to-end: serving a doubly-lost block
  // costs 3 block fetches under the pentagon vs 9 under (10,9) RAID+m.
  // Compare per-degraded-task traffic overhead.
  JobConfig config = setup1_config();
  config.overhead_traffic_bytes = 0;
  config.seed = 77;
  config.down_nodes = {0, 1};

  const auto pent_code = ec::make_code("pentagon").value();
  const auto raidm_code = ec::make_code("raidm-9").value();
  sched::DelayScheduler scheduler;
  config.load = 1.0;
  config.trials = 30;
  const auto pent = run_terasort(*pent_code, scheduler, config);
  const auto raidm = run_terasort(*raidm_code, scheduler, config);
  ASSERT_GT(pent.degraded_read_tasks, 0.0);
  ASSERT_GT(raidm.degraded_read_tasks, 0.0);
  // Per degraded task, the pentagon reads exactly 3 blocks (partial
  // parities) and (10,9) RAID+m exactly 9 -- Section 3.1's numbers.
  EXPECT_NEAR(pent.degraded_read_bytes / pent.degraded_read_tasks, 3 * 128e6,
              1e3);
  EXPECT_NEAR(raidm.degraded_read_bytes / raidm.degraded_read_tasks,
              9 * 128e6, 1e3);
}

TEST(TerasortFailures, BeyondToleranceReportsUnrunnableTasks) {
  // Three down nodes can destroy pentagon blocks outright; the simulator
  // must report them as unrunnable rather than fabricating reads.
  JobConfig config = setup1_config();
  config.down_nodes = {0, 1, 2};
  config.seed = 13;
  double unrunnable = 0;
  for (int s = 0; s < 10; ++s) {
    config.seed = 13 + s;
    unrunnable += run("pentagon", config, 1.0, 5).unrunnable_tasks;
  }
  // Most stripes don't land on exactly those 3 nodes, but across 50 runs
  // at full load some do.
  EXPECT_GT(unrunnable, 0.0);
}

TEST(TerasortFailures, ThreeRepSurvivesTwoFailuresWithoutDegradedReads) {
  JobConfig config = setup1_config();
  config.down_nodes = {3, 7};
  const auto metrics = run("3-rep", config, 1.0, 8);
  EXPECT_EQ(metrics.degraded_read_tasks, 0.0);
  EXPECT_EQ(metrics.unrunnable_tasks, 0.0);
}

}  // namespace
}  // namespace dblrep::mapred
