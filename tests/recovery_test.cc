// Crash-point recovery fuzzing of the sharded NameNode.
//
// The core property: for a scripted metadata workload, truncating the
// write-ahead journals at *every* global sequence cut S (plus mid-record
// byte cuts and CRC-corrupted tails) and recovering must land the catalog
// in a consistent pre- or post-mutation state for every mutation type --
// never anything in between. Consistency is checked against an
// independent oracle: a fresh single-shard NameNode that re-runs exactly
// the operations whose *decisive* record (kCommit for creates, kDelete
// for deletes, kRename/kRenameOut for renames) survived the cut, with
// non-surviving and aborted creates neutralized (begin + attach + abort)
// so the global stripe-id sequence matches the original run. The oracle
// never touches the journal codec or restore path, so agreement is not
// circular.
//
// Because the fingerprint is shard-count independent, one oracle serves
// every shard count: the fuzzer runs the same workload and cut sweep at
// 1, 4, and 16 shards. The workload's files cycle through every
// registered paper code scheme, so every scheme's allocate/commit/GC
// records go through the codec and replay.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "common/rng.h"
#include "ec/code.h"
#include "ec/registry.h"
#include "hdfs/journal.h"
#include "hdfs/minidfs.h"
#include "hdfs/namenode.h"
#include "hdfs/recovery.h"

namespace dblrep::hdfs {
namespace {

// 25 nodes: enough for the widest paper code (raidm-11 spans 24).
constexpr std::size_t kNumNodes = 25;
constexpr std::size_t kNumRacks = 5;
constexpr std::size_t kBlockSize = 256;

cluster::Topology make_topology() {
  cluster::Topology topology;
  topology.num_nodes = kNumNodes;
  topology.num_racks = kNumRacks;
  return topology;
}

/// Shared scheme cache: catalogs hold raw CodeScheme pointers, and the
/// fuzzer builds hundreds of NameNodes.
SchemeResolver shared_resolver() {
  static auto* schemes =
      new std::map<std::string, std::unique_ptr<ec::CodeScheme>>();
  return [](const std::string& spec) -> Result<const ec::CodeScheme*> {
    auto it = schemes->find(spec);
    if (it == schemes->end()) {
      auto code = ec::make_code(spec);
      if (!code.is_ok()) return code.status();
      it = schemes->emplace(spec, std::move(*code)).first;
    }
    return it->second.get();
  };
}

NameNode make_namenode(std::size_t shards, std::size_t snapshot_every = 0) {
  static const cluster::Topology topology = make_topology();
  return NameNode(topology, shared_resolver(),
                  NameNodeOptions{.shards = shards,
                                  .snapshot_every = snapshot_every});
}

// ------------------------------------------------- scripted workload

struct Op {
  enum Kind { kCreate, kAbortedCreate, kOpenWrite, kDelete, kRename } kind;
  std::string path;
  std::string path2;     // rename target
  std::string spec;      // creates
  std::size_t stripes = 0;
  std::size_t bytes = 0;
  /// Seq of the record that makes the op visible after recovery (0 for
  /// ops that are invisible at every cut). Filled in from the
  /// straight-line run's journals.
  std::uint64_t decisive = 0;
};

/// The fuzzed workload: every mutation type, every paper scheme, a
/// rename-then-delete chain, and a write left open at the crash.
std::vector<Op> scripted_ops() {
  std::vector<Op> ops;
  const auto specs = ec::paper_code_specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ops.push_back({Op::kCreate, "/w/d" + std::to_string(i % 3) + "/f" +
                                    std::to_string(i),
                   "", specs[i], 1 + i % 2, 100 * (i + 1)});
  }
  ops.push_back({Op::kAbortedCreate, "/w/tmp0", "", specs[0], 2, 50});
  ops.push_back({Op::kDelete, "/w/d2/f2", "", "", 0, 0});
  ops.push_back({Op::kRename, "/w/d0/f3", "/moved/g3", "", 0, 0});
  ops.push_back({Op::kDelete, "/moved/g3", "", "", 0, 0});
  ops.push_back({Op::kRename, "/w/d1/f4", "/moved/g4", "", 0, 0});
  ops.push_back({Op::kCreate, "/w/late", "", specs[1], 2, 640});
  ops.push_back({Op::kOpenWrite, "/w/open", "", specs[2], 2, 90});
  return ops;
}

/// Deterministic placement for stripe `j` of op `index`: a function of
/// nothing but (index, j), so the oracle reproduces the original run's
/// groups exactly.
std::vector<std::vector<cluster::NodeId>> groups_for(const Op& op,
                                                     std::size_t index,
                                                     std::size_t num_nodes) {
  std::vector<std::vector<cluster::NodeId>> groups;
  for (std::size_t j = 0; j < op.stripes; ++j) {
    std::vector<cluster::NodeId> group(num_nodes);
    for (std::size_t n = 0; n < num_nodes; ++n) {
      group[n] =
          static_cast<cluster::NodeId>((7 * index + 3 * j + n) % kNumNodes);
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

void run_create_steps(NameNode& nn, const Op& op, std::size_t index,
                      bool publish) {
  const ec::CodeScheme& code = *shared_resolver()(op.spec).value();
  ASSERT_TRUE(nn.begin_write(op.path, op.spec, kBlockSize).is_ok())
      << op.path;
  const auto stripes =
      nn.attach_stripes(op.path, code, groups_for(op, index, code.num_nodes()));
  ASSERT_TRUE(stripes.is_ok()) << op.path << ": "
                               << stripes.status().to_string();
  ASSERT_TRUE(nn.record_store(op.path, stripes->front(), op.bytes).is_ok());
  if (publish) {
    ASSERT_TRUE(nn.commit_write(op.path).is_ok()) << op.path;
  } else {
    ASSERT_TRUE(nn.abort_write(op.path).is_ok()) << op.path;
  }
}

/// Straight-line execution of ops[lo, hi) (every op runs to its scripted
/// end; kOpenWrite stays open -- the state a crash would find). Indices
/// stay global so groups_for draws the same placements in partial runs.
void run_workload(NameNode& nn, const std::vector<Op>& ops,
                  std::size_t lo = 0,
                  std::size_t hi = std::size_t(-1)) {
  for (std::size_t i = lo; i < std::min(hi, ops.size()); ++i) {
    const Op& op = ops[i];
    switch (op.kind) {
      case Op::kCreate:
        run_create_steps(nn, op, i, /*publish=*/true);
        break;
      case Op::kAbortedCreate:
        run_create_steps(nn, op, i, /*publish=*/false);
        break;
      case Op::kOpenWrite: {
        const ec::CodeScheme& code = *shared_resolver()(op.spec).value();
        ASSERT_TRUE(nn.begin_write(op.path, op.spec, kBlockSize).is_ok());
        ASSERT_TRUE(
            nn.attach_stripes(op.path, code,
                              groups_for(op, i, code.num_nodes()))
                .is_ok());
        break;
      }
      case Op::kDelete:
        ASSERT_TRUE(nn.remove_file(op.path).is_ok()) << op.path;
        break;
      case Op::kRename:
        ASSERT_TRUE(nn.rename(op.path, op.path2).is_ok()) << op.path;
        break;
    }
  }
}

/// Finds each op's decisive record in the straight-line run's journals
/// and returns the highest seq seen anywhere.
std::uint64_t fill_decisive_seqs(const NameNode& nn, std::vector<Op>& ops) {
  std::vector<JournalRecord> records;
  std::uint64_t max_seq = 0;
  for (std::size_t s = 0; s < nn.num_shards(); ++s) {
    const Buffer bytes = nn.journal_bytes(s);
    const ParsedJournal parsed = parse_journal(bytes);
    EXPECT_TRUE(parsed.clean()) << parsed.tail_error;
    for (const auto& r : parsed.records) {
      records.push_back(r);
      max_seq = std::max(max_seq, r.seq);
    }
  }
  for (auto& op : ops) {
    for (const auto& r : records) {
      const bool match =
          (op.kind == Op::kCreate && r.kind == JournalRecordKind::kCommit &&
           r.path == op.path) ||
          (op.kind == Op::kDelete && r.kind == JournalRecordKind::kDelete &&
           r.path == op.path) ||
          (op.kind == Op::kRename &&
           (r.kind == JournalRecordKind::kRename ||
            r.kind == JournalRecordKind::kRenameOut) &&
           r.path == op.path);
      if (match) {
        EXPECT_EQ(op.decisive, 0u) << "two decisive records for " << op.path;
        op.decisive = r.seq;
      }
    }
    if (op.kind == Op::kCreate || op.kind == Op::kDelete ||
        op.kind == Op::kRename) {
      EXPECT_NE(op.decisive, 0u) << "no decisive record for " << op.path;
    }
  }
  return max_seq;
}

/// The independent oracle: a fresh single-shard NameNode that re-runs the
/// ops whose decisive seq is < `cut`. Creates that did not survive (and
/// aborted/open ones, which survive no cut) still allocate their stripes
/// and then abort, keeping the global stripe-id draw order identical to
/// the original run's. Results cached per surviving-prefix: decisive seqs
/// are strictly increasing in program order, so the surviving set is
/// always a prefix of the decisive ops.
class Oracle {
 public:
  explicit Oracle(const std::vector<Op>& ops) : ops_(ops) {}

  std::uint64_t fingerprint_at(std::uint64_t cut) {
    std::size_t survivors = 0;
    for (const auto& op : ops_) {
      if (op.decisive != 0 && op.decisive < cut) ++survivors;
    }
    const auto it = cache_.find(survivors);
    if (it != cache_.end()) return it->second;

    NameNode nn = make_namenode(1);
    std::size_t applied = 0;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      const Op& op = ops_[i];
      const bool survives = op.decisive != 0 && applied < survivors;
      switch (op.kind) {
        case Op::kCreate:
          run_create_steps(nn, op, i, /*publish=*/survives);
          break;
        case Op::kAbortedCreate:
        case Op::kOpenWrite:
          // Invisible at every cut, but their stripe-id draws are not.
          run_create_steps(nn, op, i, /*publish=*/false);
          break;
        case Op::kDelete:
          if (survives) {
            EXPECT_TRUE(nn.remove_file(op.path).is_ok());
          }
          break;
        case Op::kRename:
          if (survives) {
            EXPECT_TRUE(nn.rename(op.path, op.path2).is_ok());
          }
          break;
      }
      if (op.decisive != 0 && survives) ++applied;
    }
    EXPECT_EQ(applied, survivors);
    const std::uint64_t fp = nn.fingerprint();
    cache_.emplace(survivors, fp);
    return fp;
  }

 private:
  const std::vector<Op>& ops_;
  std::map<std::size_t, std::uint64_t> cache_;
};

std::vector<Buffer> journals_at_cut(const NameNode& nn, std::uint64_t cut) {
  std::vector<Buffer> journals;
  for (std::size_t s = 0; s < nn.num_shards(); ++s) {
    const Buffer bytes = nn.journal_bytes(s);
    journals.push_back(truncate_journal_at_seq(bytes, cut));
  }
  return journals;
}

std::vector<Buffer> snapshots_of(const NameNode& nn) {
  std::vector<Buffer> snapshots;
  for (std::size_t s = 0; s < nn.num_shards(); ++s) {
    snapshots.push_back(nn.snapshot_bytes(s));
  }
  return snapshots;
}

// ------------------------------------------------------ the fuzzer

class CrashPointFuzz : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrashPointFuzz, EveryJournalCutRecoversToOracleState) {
  const std::size_t shards = GetParam();
  std::vector<Op> ops = scripted_ops();
  NameNode nn = make_namenode(shards);
  run_workload(nn, ops);
  ASSERT_FALSE(::testing::Test::HasFailure());
  const std::uint64_t max_seq = fill_decisive_seqs(nn, ops);
  ASSERT_GT(max_seq, 0u);

  Oracle oracle(ops);
  for (std::uint64_t cut = 1; cut <= max_seq + 1; ++cut) {
    NameNode scratch = make_namenode(shards);
    const auto report =
        scratch.restore(snapshots_of(nn), journals_at_cut(nn, cut));
    ASSERT_TRUE(report.is_ok())
        << "cut " << cut << ": " << report.status().to_string();
    EXPECT_FALSE(scratch.has_pending_writes()) << "cut " << cut;
    EXPECT_EQ(scratch.fingerprint(), oracle.fingerprint_at(cut))
        << "cut " << cut << " under " << shards << " shards";
  }
}

TEST_P(CrashPointFuzz, RecoveryIsIdempotent) {
  const std::size_t shards = GetParam();
  std::vector<Op> ops = scripted_ops();
  NameNode nn = make_namenode(shards);
  run_workload(nn, ops);
  const std::uint64_t max_seq = fill_decisive_seqs(nn, ops);

  const std::uint64_t cut = max_seq / 2 + 1;
  NameNode once = make_namenode(shards);
  ASSERT_TRUE(once.restore(snapshots_of(nn), journals_at_cut(nn, cut))
                  .is_ok());
  // Crash again immediately: the recovered artifacts must reproduce the
  // recovered state exactly.
  const std::uint64_t fp = once.fingerprint();
  ASSERT_TRUE(once.crash_and_recover().is_ok());
  EXPECT_EQ(once.fingerprint(), fp);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, CrashPointFuzz,
                         ::testing::Values(1, 4, 16));

TEST(CrashPointFuzzBytes, MidRecordAndCorruptCutsEqualPriorBoundary) {
  // Byte-level cuts on a single-shard run (global seq == shard order):
  // truncating mid-frame or corrupting the tail CRC must recover exactly
  // the prior record boundary's state -- torn appends are as if the
  // mutation never reached the journal.
  std::vector<Op> ops = scripted_ops();
  NameNode nn = make_namenode(1);
  run_workload(nn, ops);
  ASSERT_FALSE(::testing::Test::HasFailure());
  fill_decisive_seqs(nn, ops);

  const Buffer bytes = nn.journal_bytes(0);
  const ParsedJournal parsed = parse_journal(bytes);
  ASSERT_TRUE(parsed.clean());

  Oracle oracle(ops);
  const auto fingerprint_of = [&](Buffer journal) {
    NameNode scratch = make_namenode(1);
    const auto report =
        scratch.restore(snapshots_of(nn), {std::move(journal)});
    EXPECT_TRUE(report.is_ok()) << report.status().to_string();
    return scratch.fingerprint();
  };

  std::size_t start = 0;
  for (std::size_t i = 0; i < parsed.records.size(); ++i) {
    const std::size_t end = start + encode_record(parsed.records[i]).size();
    // The state a cut anywhere inside record i must land in: record i
    // lost, records 0..i-1 replayed.
    const std::uint64_t expected =
        oracle.fingerprint_at(parsed.records[i].seq);

    for (const std::size_t cut :
         {start + 1, start + (end - start) / 2, end - 1}) {
      Buffer torn(bytes.begin(), bytes.begin() + cut);
      EXPECT_EQ(fingerprint_of(std::move(torn)), expected)
          << "record " << i << " byte cut " << cut;
    }
    Buffer corrupt(bytes.begin(), bytes.begin() + end);
    corrupt[start + 8] ^= 0x20;  // payload flip: CRC catches it
    EXPECT_EQ(fingerprint_of(std::move(corrupt)), expected)
        << "record " << i << " CRC flip";
    start = end;
  }
  ASSERT_EQ(start, bytes.size());
}

TEST(CrashPointFuzzSnapshot, CutsAfterMidWorkloadSnapshotRecover) {
  // Snapshot halfway through the workload, keep mutating, then fuzz every
  // post-snapshot cut: recovery is image + remaining-journal replay.
  std::vector<Op> ops = scripted_ops();
  NameNode nn = make_namenode(4);

  run_workload(nn, ops, 0, ops.size() / 2);
  nn.snapshot();
  run_workload(nn, ops, ops.size() / 2);
  ASSERT_FALSE(::testing::Test::HasFailure());

  // The snapshot absorbed the head's journal records, so decisive seqs
  // come from an identical probe run -- same shard count, because a
  // cross-shard rename draws three seqs where a same-shard one draws one.
  NameNode plain = make_namenode(4);
  run_workload(plain, ops);
  const std::uint64_t max_seq = fill_decisive_seqs(plain, ops);

  // A crash can only happen after the snapshot existed: the earliest
  // consistent cut keeps everything the images already absorbed.
  std::uint64_t snapshot_seq = 0;
  for (std::size_t s = 0; s < nn.num_shards(); ++s) {
    const auto image = decode_snapshot(nn.snapshot_bytes(s));
    ASSERT_TRUE(image.is_ok());
    snapshot_seq = std::max(snapshot_seq, image->last_seq);
  }
  ASSERT_GT(snapshot_seq, 0u);
  ASSERT_GT(max_seq, snapshot_seq);

  Oracle oracle(ops);
  for (std::uint64_t cut = snapshot_seq + 1; cut <= max_seq + 1; ++cut) {
    NameNode scratch = make_namenode(4);
    const auto report =
        scratch.restore(snapshots_of(nn), journals_at_cut(nn, cut));
    ASSERT_TRUE(report.is_ok())
        << "cut " << cut << ": " << report.status().to_string();
    EXPECT_EQ(scratch.fingerprint(), oracle.fingerprint_at(cut))
        << "post-snapshot cut " << cut;
  }
}

TEST(CrashPointFuzzSnapshot, AutoSnapshotRunRecoversIdentically) {
  // With an aggressive auto-snapshot cadence the same workload spreads
  // its history across images and journals differently; the recovered
  // fingerprint must not care.
  std::vector<Op> ops = scripted_ops();
  NameNode nn = make_namenode(4, /*snapshot_every=*/4);
  run_workload(nn, ops);
  ASSERT_FALSE(::testing::Test::HasFailure());

  NameNode scratch = make_namenode(4);
  const auto report = scratch.restore(snapshots_of(nn), journals_at_cut(
                                          nn, ~std::uint64_t{0}));
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();

  std::vector<Op> probe = scripted_ops();
  NameNode plain = make_namenode(1);
  run_workload(plain, probe);
  const std::uint64_t max_seq = fill_decisive_seqs(plain, probe);
  Oracle oracle(probe);
  EXPECT_EQ(scratch.fingerprint(), oracle.fingerprint_at(max_seq + 1));
  EXPECT_FALSE(scratch.has_pending_writes());
}

// ----------------------------------------------- full-stack MiniDfs

TEST(MiniDfsRecovery, CrashRollsBackOpenWriteAndGcsItsBlocks) {
  cluster::Topology topology = make_topology();
  MiniDfsOptions options;
  options.meta_shards = 4;
  MiniDfs dfs(topology, /*seed=*/11, /*pool=*/nullptr, options);

  const Buffer published = random_buffer(kBlockSize * 6, 1);
  ASSERT_TRUE(
      dfs.write_file("/keep", published, "pentagon", kBlockSize).is_ok());
  const std::uint64_t fp_before = dfs.catalog_fingerprint();
  const std::size_t bytes_before = dfs.stored_bytes();

  // Leave a write open with real blocks on disk, then crash.
  ASSERT_TRUE(dfs.begin_write("/open", "3-rep", kBlockSize).is_ok());
  const auto stripe = dfs.allocate_stripe("/open");
  ASSERT_TRUE(stripe.is_ok());
  const Buffer partial = random_buffer(kBlockSize, 2);
  ASSERT_TRUE(dfs.store_stripe("/open", *stripe, partial).is_ok());
  ASSERT_GT(dfs.stored_bytes(), bytes_before);

  const auto report = dfs.crash_namenode();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->open_writes_rolled_back, 1u);

  // The open write is gone from the namespace, its blocks are gone from
  // the datanodes, and the published file is untouched and readable.
  EXPECT_FALSE(dfs.stat("/open").is_ok());
  EXPECT_EQ(dfs.stored_bytes(), bytes_before);
  EXPECT_EQ(dfs.catalog_fingerprint(), fp_before);
  const auto read = dfs.read_file("/keep");
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(*read, published);

  // The recovered plane accepts new work.
  ASSERT_TRUE(
      dfs.write_file("/after", published, "heptagon", kBlockSize).is_ok());
  EXPECT_TRUE(dfs.read_file("/after").is_ok());
}

TEST(MiniDfsRecovery, CrashPreservesEveryPublishedSchemeAndRepairs) {
  cluster::Topology topology = make_topology();
  MiniDfsOptions options;
  options.meta_shards = 16;
  MiniDfs dfs(topology, /*seed=*/13, /*pool=*/nullptr, options);

  std::map<std::string, Buffer> payloads;
  const auto specs = ec::paper_code_specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string path = "/s/" + specs[i];
    payloads[path] = random_buffer(kBlockSize * (4 + i), 100 + i);
    ASSERT_TRUE(
        dfs.write_file(path, payloads[path], specs[i], kBlockSize).is_ok());
  }
  dfs.snapshot_namenode();
  ASSERT_TRUE(dfs.delete_file("/s/" + specs[0]).is_ok());
  payloads.erase("/s/" + specs[0]);

  const std::uint64_t fp_before = dfs.catalog_fingerprint();
  const auto report = dfs.crash_namenode();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(dfs.catalog_fingerprint(), fp_before);

  // Data plane still works end to end: reads, degraded reads, repair.
  ASSERT_TRUE(dfs.fail_node(2).is_ok());
  for (const auto& [path, data] : payloads) {
    const auto read = dfs.read_file(path);
    ASSERT_TRUE(read.is_ok()) << path << ": " << read.status().to_string();
    EXPECT_EQ(*read, data) << path;
  }
  ASSERT_TRUE(dfs.repair_node(2).is_ok());
}

}  // namespace
}  // namespace dblrep::hdfs
