// Tests for the handle-based client API: streaming FileWriter ingest vs
// bulk writes, byte-range preads (boundary crossings, EOF clamping,
// degraded ranges under failures for every registered scheme, the
// partition property against read_file), async-vs-sync equivalence of
// bytes and traffic totals, and the open/sealed stat surface.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/topology.h"
#include "common/rng.h"
#include "ec/registry.h"
#include "exec/thread_pool.h"
#include "hdfs/client.h"
#include "hdfs/minidfs.h"
#include "hdfs/workload_driver.h"

namespace dblrep::hdfs {
namespace {

constexpr std::size_t kBlockSize = 64;

MiniDfs make_dfs(std::size_t nodes = 25, std::uint64_t seed = 7,
                 exec::ThreadPool* pool = nullptr) {
  cluster::Topology topology;
  topology.num_nodes = nodes;
  return MiniDfs(topology, seed, pool);
}

Buffer payload(std::size_t size, std::uint64_t seed = 1) {
  return random_buffer(size, seed);
}

std::size_t data_blocks(const std::string& spec) {
  return ec::make_code(spec).value()->data_blocks();
}

int fault_tolerance(const std::string& spec) {
  return ec::make_code(spec).value()->params().fault_tolerance;
}

/// Fails `count` nodes out of the first stripe's placement group, so the
/// failures are guaranteed to hit this file's data.
void fail_group_nodes(MiniDfs& dfs, const std::string& path,
                      std::size_t count) {
  const auto info = dfs.stat(path);
  ASSERT_TRUE(info.is_ok());
  const auto group = dfs.catalog().stripe(info->stripes.front()).group;
  ASSERT_LE(count, group.size());
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_TRUE(dfs.fail_node(group[i]).is_ok());
  }
}

class ClientSchemeTest : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(PaperCodes, ClientSchemeTest,
                         ::testing::Values("2-rep", "3-rep", "pentagon",
                                           "heptagon", "heptagon-local",
                                           "raidm-9", "rs-10-4"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

// ------------------------------------------------------- FileWriter

TEST_P(ClientSchemeTest, StreamingWriterMatchesBulkWrite) {
  const std::string spec = GetParam();
  const std::size_t stripe_bytes = data_blocks(spec) * kBlockSize;
  // 2 full stripes plus a 1.5-block tail: padding and tail-stripe paths.
  const Buffer data = payload(2 * stripe_bytes + kBlockSize + kBlockSize / 2);

  MiniDfs bulk = make_dfs();
  ASSERT_TRUE(bulk.write_file("/f", data, spec, kBlockSize).is_ok());

  MiniDfs streamed = make_dfs();  // same seed: same placement draws
  Client client(streamed, {.max_inflight_stripes = 2});
  auto writer = client.create("/f", spec, kBlockSize);
  ASSERT_TRUE(writer.is_ok()) << writer.status().to_string();
  // Odd-sized chunks that never line up with block or stripe boundaries.
  Rng rng(11);
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t len = std::min<std::size_t>(
        1 + rng.next_below(stripe_bytes + 3), data.size() - offset);
    ASSERT_TRUE(writer->append(ByteSpan(data).subspan(offset, len)).is_ok());
    offset += len;
  }
  EXPECT_EQ(writer->bytes_appended(), data.size());
  ASSERT_TRUE(writer->close().is_ok());
  EXPECT_FALSE(writer->is_open());

  // Same bytes back, same logical metadata, same stored bytes, and --
  // because the placement draws are identical -- same traffic totals.
  const auto bulk_read = bulk.read_file("/f");
  const auto streamed_read = streamed.read_file("/f");
  ASSERT_TRUE(bulk_read.is_ok());
  ASSERT_TRUE(streamed_read.is_ok());
  EXPECT_EQ(*bulk_read, data);
  EXPECT_EQ(*streamed_read, data);
  EXPECT_EQ(streamed.stat("/f")->length, bulk.stat("/f")->length);
  EXPECT_EQ(streamed.stat("/f")->stripes.size(),
            bulk.stat("/f")->stripes.size());
  EXPECT_EQ(streamed.stored_bytes(), bulk.stored_bytes());
  EXPECT_EQ(streamed.traffic().total_bytes(), bulk.traffic().total_bytes());
  EXPECT_EQ(streamed.traffic().client_bytes(), bulk.traffic().client_bytes());
}

TEST(FileWriter, PipelinesManyStripesThroughBoundedWindow) {
  // A worker pool plus a 2-stripe in-flight cap: ingest far more stripes
  // than the window holds; every byte must still land exactly once.
  exec::ThreadPool pool(4);
  MiniDfs dfs = make_dfs(25, 7, &pool);
  Client client(dfs, {.max_inflight_stripes = 2});
  const std::size_t stripe_bytes = data_blocks("rs-10-4") * kBlockSize;
  const Buffer data = payload(32 * stripe_bytes + 5);
  auto writer = client.create("/big", "rs-10-4", kBlockSize);
  ASSERT_TRUE(writer.is_ok());
  for (std::size_t offset = 0; offset < data.size(); offset += kBlockSize) {
    const std::size_t len = std::min(kBlockSize, data.size() - offset);
    ASSERT_TRUE(writer->append(ByteSpan(data).subspan(offset, len)).is_ok());
  }
  ASSERT_TRUE(writer->close().is_ok());
  const auto read = dfs.read_file("/big");
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(*read, data);
  EXPECT_EQ(dfs.stat("/big")->stripes.size(), 33u);  // 32 full + tail
}

TEST(FileWriter, StripeAlignedAppendsAreZeroCopy) {
  // Stripe-aligned spans must flow straight from the caller's memory into
  // the encoder: zero bytes staged through the sub-stripe buffer. The
  // WriterStats probe counts every byte down each path.
  exec::ThreadPool pool(4);
  MiniDfs dfs = make_dfs(25, 7, &pool);
  Client client(dfs, {.max_inflight_stripes = 4});
  const std::size_t stripe_bytes = data_blocks("rs-10-4") * kBlockSize;
  const Buffer data = payload(8 * stripe_bytes);
  auto writer = client.create("/aligned", "rs-10-4", kBlockSize);
  ASSERT_TRUE(writer.is_ok());

  // One single-stripe span, then one span covering several stripes; a
  // scratch copy is scribbled over after each append to prove the writer
  // no longer aliases the caller's span once append returns.
  Buffer scratch(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(
                                                  stripe_bytes));
  ASSERT_TRUE(writer->append(scratch).is_ok());
  std::fill(scratch.begin(), scratch.end(), std::uint8_t{0xAA});
  ASSERT_TRUE(
      writer->append(ByteSpan(data).subspan(stripe_bytes)).is_ok());

  EXPECT_EQ(writer->stats().buffered_bytes, 0u);
  EXPECT_EQ(writer->stats().zero_copy_bytes, data.size());
  ASSERT_TRUE(writer->close().is_ok());

  // Byte-identity with the bulk path is unchanged by the zero-copy route
  // (write traffic compared before the read below adds its own).
  MiniDfs bulk = make_dfs(25, 7);
  ASSERT_TRUE(bulk.write_file("/aligned", data, "rs-10-4", kBlockSize)
                  .is_ok());
  EXPECT_EQ(dfs.stored_bytes(), bulk.stored_bytes());
  EXPECT_EQ(dfs.traffic().client_bytes(), bulk.traffic().client_bytes());

  const auto read = dfs.read_file("/aligned");
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(*read, data);
}

TEST(FileWriter, RaggedAppendsAccountToBufferedBytes) {
  // Unaligned ingest exercises the other half of the accounting: the head
  // that tops up the buffer and the sub-stripe tail are copied; the
  // stripe-aligned middle of a large span still goes zero-copy.
  MiniDfs dfs = make_dfs();
  Client client(dfs, {.max_inflight_stripes = 2});
  const std::size_t stripe_bytes = data_blocks("pentagon") * kBlockSize;
  const Buffer data = payload(2 * stripe_bytes + stripe_bytes / 2);
  auto writer = client.create("/ragged", "pentagon", kBlockSize);
  ASSERT_TRUE(writer.is_ok());

  const std::size_t head = kBlockSize / 2;
  ASSERT_TRUE(writer->append(ByteSpan(data).first(head)).is_ok());
  // Tops the buffer up to one full stripe (copied), then 1.5 stripes:
  // one full stripe zero-copy, half a stripe buffered as the tail.
  ASSERT_TRUE(writer->append(ByteSpan(data).subspan(head)).is_ok());

  EXPECT_EQ(writer->stats().zero_copy_bytes, stripe_bytes);
  EXPECT_EQ(writer->stats().buffered_bytes, data.size() - stripe_bytes);
  ASSERT_TRUE(writer->close().is_ok());
  const auto read = dfs.read_file("/ragged");
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(*read, data);
}

TEST(FileWriter, StatShowsOpenThenSealed) {
  MiniDfs dfs = make_dfs();
  Client client(dfs);
  const std::size_t stripe_bytes = data_blocks("pentagon") * kBlockSize;
  auto writer = client.create("/w", "pentagon", kBlockSize);
  ASSERT_TRUE(writer.is_ok());

  // Open: visible to stat (unsealed, bytes stored so far), not to readers.
  auto info = dfs.stat("/w");
  ASSERT_TRUE(info.is_ok());
  EXPECT_FALSE(info->sealed);
  EXPECT_EQ(info->length, 0u);
  EXPECT_EQ(dfs.read_file("/w").status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(writer->append(payload(stripe_bytes + 7)).is_ok());
  info = dfs.stat("/w");
  ASSERT_TRUE(info.is_ok());
  EXPECT_FALSE(info->sealed);
  EXPECT_EQ(info->length, stripe_bytes);  // the full stripe has landed

  ASSERT_TRUE(writer->close().is_ok());
  info = dfs.stat("/w");
  ASSERT_TRUE(info.is_ok());
  EXPECT_TRUE(info->sealed);
  EXPECT_EQ(info->length, stripe_bytes + 7);
  EXPECT_TRUE(dfs.read_file("/w").is_ok());
}

TEST(FileWriter, AbortAndDestructorRollBack) {
  MiniDfs dfs = make_dfs();
  Client client(dfs);
  const std::size_t stripe_bytes = data_blocks("pentagon") * kBlockSize;
  {
    auto writer = client.create("/gone", "pentagon", kBlockSize);
    ASSERT_TRUE(writer.is_ok());
    ASSERT_TRUE(writer->append(payload(2 * stripe_bytes)).is_ok());
    ASSERT_TRUE(writer->abort().is_ok());
  }
  {
    auto writer = client.create("/dropped", "pentagon", kBlockSize);
    ASSERT_TRUE(writer.is_ok());
    ASSERT_TRUE(writer->append(payload(stripe_bytes)).is_ok());
    // Destroyed while open: the write aborts.
  }
  EXPECT_EQ(dfs.stored_bytes(), 0u);
  EXPECT_EQ(dfs.catalog().num_stripes(), 0u);
  EXPECT_EQ(dfs.stat("/gone").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(dfs.stat("/dropped").status().code(), StatusCode::kNotFound);
  // Both paths are free again.
  EXPECT_TRUE(client.create("/gone", "pentagon", kBlockSize).is_ok());
}

TEST(FileWriter, LifecycleErrors) {
  MiniDfs dfs = make_dfs();
  Client client(dfs);
  auto writer = client.create("/x", "pentagon", kBlockSize);
  ASSERT_TRUE(writer.is_ok());
  // The path is reserved while the handle is open.
  EXPECT_EQ(client.create("/x", "pentagon", kBlockSize).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(dfs.write_file("/x", payload(10), "pentagon", kBlockSize).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(writer->close().is_ok());
  EXPECT_EQ(writer->append(payload(8)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer->close().code(), StatusCode::kFailedPrecondition);
  // Unknown code / zero block size fail at create.
  EXPECT_EQ(client.create("/y", "nonagon", kBlockSize).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client.create("/y", "pentagon", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FileWriter, EmptyFilePublishes) {
  MiniDfs dfs = make_dfs();
  Client client(dfs);
  auto writer = client.create("/empty", "rs-10-4", kBlockSize);
  ASSERT_TRUE(writer.is_ok());
  ASSERT_TRUE(writer->close().is_ok());
  const auto info = dfs.stat("/empty");
  ASSERT_TRUE(info.is_ok());
  EXPECT_TRUE(info->sealed);
  EXPECT_EQ(info->length, 0u);
  const auto read = dfs.read_file("/empty");
  ASSERT_TRUE(read.is_ok());
  EXPECT_TRUE(read->empty());
}

// ------------------------------------------------------------- pread

TEST_P(ClientSchemeTest, PreadPartitionsConcatToReadFile) {
  const std::string spec = GetParam();
  const std::size_t stripe_bytes = data_blocks(spec) * kBlockSize;
  const Buffer data = payload(2 * stripe_bytes + kBlockSize + 13, 3);

  // Healthy, then 1..min(3, tolerance) failures: the partition property
  // must hold through the degraded-read path too.
  const int max_failures = std::min(3, fault_tolerance(spec));
  for (int failures = 0; failures <= max_failures; ++failures) {
    MiniDfs dfs = make_dfs();
    Client client(dfs);
    ASSERT_TRUE(client.write("/f", data, spec, kBlockSize).is_ok());
    if (failures > 0) {
      fail_group_nodes(dfs, "/f", static_cast<std::size_t>(failures));
    }
    const auto whole = client.read("/f");
    ASSERT_TRUE(whole.is_ok())
        << spec << " failures=" << failures << ": "
        << whole.status().to_string();
    ASSERT_EQ(*whole, data);

    // Several partitions of [0, length): block-aligned, stripe-aligned,
    // and random unaligned chunk sizes.
    std::vector<std::vector<std::size_t>> partitions;
    partitions.push_back({kBlockSize});            // block-by-block
    partitions.push_back({stripe_bytes});          // stripe-by-stripe
    partitions.push_back({data.size()});           // one shot
    partitions.push_back({1 + kBlockSize / 3, kBlockSize - 1, 7,
                          stripe_bytes + 5});      // ragged cycle
    for (const auto& chunk_cycle : partitions) {
      Buffer reassembled;
      std::size_t offset = 0;
      std::size_t turn = 0;
      while (offset < data.size()) {
        const std::size_t len = chunk_cycle[turn++ % chunk_cycle.size()];
        const auto chunk = client.pread("/f", offset, len);
        ASSERT_TRUE(chunk.is_ok())
            << spec << " failures=" << failures << " offset=" << offset
            << ": " << chunk.status().to_string();
        ASSERT_FALSE(chunk->empty());
        reassembled.insert(reassembled.end(), chunk->begin(), chunk->end());
        offset += chunk->size();
      }
      ASSERT_EQ(reassembled, data)
          << spec << " failures=" << failures
          << ": concatenated preads diverge from read_file";
    }
  }
}

TEST(Pread, CrossesBlockAndStripeBoundaries) {
  MiniDfs dfs = make_dfs();
  Client client(dfs);
  const std::size_t k = data_blocks("rs-10-4");
  const std::size_t stripe_bytes = k * kBlockSize;
  const Buffer data = payload(3 * stripe_bytes, 5);
  ASSERT_TRUE(client.write("/f", data, "rs-10-4", kBlockSize).is_ok());

  const auto expect_range = [&](std::size_t offset, std::size_t len) {
    const auto got = client.pread("/f", offset, len);
    ASSERT_TRUE(got.is_ok()) << got.status().to_string();
    const std::size_t want = std::min(len, data.size() - offset);
    ASSERT_EQ(got->size(), want);
    EXPECT_EQ(0, std::memcmp(got->data(), data.data() + offset, want))
        << "range [" << offset << ", +" << len << ")";
  };
  expect_range(kBlockSize - 1, 2);                // block boundary
  expect_range(stripe_bytes - 3, 7);              // stripe boundary
  expect_range(stripe_bytes - 1, stripe_bytes + 2);  // spans a full stripe
  expect_range(0, 1);                             // first byte
  expect_range(data.size() - 1, 1);               // last byte
  expect_range(kBlockSize / 2, kBlockSize);       // inside two blocks
}

TEST(Pread, EdgeRanges) {
  MiniDfs dfs = make_dfs();
  Client client(dfs);
  const Buffer data = payload(data_blocks("pentagon") * kBlockSize + 9, 8);
  ASSERT_TRUE(client.write("/f", data, "pentagon", kBlockSize).is_ok());

  // Zero-length anywhere in range: empty, and no bytes move.
  const double client_bytes0 = dfs.traffic().client_bytes();
  for (const std::size_t offset : {std::size_t{0}, kBlockSize, data.size()}) {
    const auto got = client.pread("/f", offset, 0);
    ASSERT_TRUE(got.is_ok());
    EXPECT_TRUE(got->empty());
  }
  // Reading *at* EOF is a legal empty read even with len > 0.
  const auto at_eof = client.pread("/f", data.size(), 10);
  ASSERT_TRUE(at_eof.is_ok());
  EXPECT_TRUE(at_eof->empty());
  EXPECT_EQ(dfs.traffic().client_bytes(), client_bytes0);

  // Overshooting len clamps at EOF.
  const auto tail = client.pread("/f", data.size() - 5, 1000);
  ASSERT_TRUE(tail.is_ok());
  EXPECT_EQ(tail->size(), 5u);
  EXPECT_EQ(0, std::memcmp(tail->data(), data.data() + data.size() - 5, 5));

  // An offset beyond EOF is an argument error; unknown paths are NOT_FOUND.
  EXPECT_EQ(client.pread("/f", data.size() + 1, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client.pread("/nope", 0, 1).status().code(),
            StatusCode::kNotFound);
}

TEST(Pread, MovesStrictlyFewerClientBytesThanReadFile) {
  MiniDfs dfs = make_dfs();
  Client client(dfs);
  const std::size_t stripe_bytes = data_blocks("rs-10-4") * kBlockSize;
  const Buffer data = payload(4 * stripe_bytes, 9);
  ASSERT_TRUE(client.write("/f", data, "rs-10-4", kBlockSize).is_ok());

  const double before_pread = dfs.traffic().client_bytes();
  ASSERT_TRUE(client.pread("/f", kBlockSize, kBlockSize).is_ok());
  const double pread_bytes = dfs.traffic().client_bytes() - before_pread;

  const double before_read = dfs.traffic().client_bytes();
  ASSERT_TRUE(client.read("/f").is_ok());
  const double read_bytes = dfs.traffic().client_bytes() - before_read;

  // One aligned block resolves exactly one block off the wire.
  EXPECT_EQ(pread_bytes, static_cast<double>(kBlockSize));
  EXPECT_LT(pread_bytes, read_bytes);
  EXPECT_EQ(read_bytes, static_cast<double>(data.size()));
}

TEST(ReadBlock, IndicesPastLogicalEofRejected) {
  MiniDfs dfs = make_dfs();
  // 2 logical blocks of a pentagon stripe (k = 4): indices 2..3 fall in
  // the stripe's zero-padding and must be rejected, not served.
  const Buffer data = payload(2 * kBlockSize, 4);
  ASSERT_TRUE(dfs.write_file("/f", data, "pentagon", kBlockSize).is_ok());
  EXPECT_TRUE(dfs.read_block("/f", 0).is_ok());
  EXPECT_TRUE(dfs.read_block("/f", 1).is_ok());
  EXPECT_EQ(dfs.read_block("/f", 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(dfs.read_block("/f", 999).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CodeFor, UnknownPathIsStatusNotCrash) {
  MiniDfs dfs = make_dfs();
  const auto code = dfs.code_for("/missing");
  EXPECT_FALSE(code.is_ok());
  EXPECT_EQ(code.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------- async

TEST(AsyncClient, MatchesSyncBytesAndTraffic) {
  // Same seed, same ops: the async path must move exactly the same bytes
  // over the wire as the sync path -- healthy and degraded.
  exec::ThreadPool pool(4);
  const std::size_t stripe_bytes = data_blocks("rs-10-4") * kBlockSize;
  const Buffer data = payload(3 * stripe_bytes + 17, 6);

  for (const std::size_t failures : {std::size_t{0}, std::size_t{2}}) {
    MiniDfs sync_dfs = make_dfs(25, 7, &pool);
    MiniDfs async_dfs = make_dfs(25, 7, &pool);
    Client sync_client(sync_dfs);
    Client async_client(async_dfs);

    ASSERT_TRUE(
        sync_client.write("/f", data, "rs-10-4", kBlockSize).is_ok());
    auto write_future =
        async_client.write_async("/f", data, "rs-10-4", kBlockSize);
    ASSERT_TRUE(write_future.get().is_ok());
    if (failures > 0) {
      fail_group_nodes(sync_dfs, "/f", failures);
      fail_group_nodes(async_dfs, "/f", failures);
    }

    const std::vector<std::pair<std::size_t, std::size_t>> ranges = {
        {0, stripe_bytes}, {kBlockSize - 1, 2 * kBlockSize}, {5, 1},
        {stripe_bytes - 2, kBlockSize}, {0, data.size()}};
    std::vector<exec::Future<Result<Buffer>>> futures;
    futures.reserve(ranges.size());
    for (const auto& [offset, len] : ranges) {
      futures.push_back(async_client.pread_async("/f", offset, len));
    }
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      const auto sync_result =
          sync_client.pread("/f", ranges[i].first, ranges[i].second);
      auto async_result = futures[i].get();
      ASSERT_TRUE(sync_result.is_ok()) << sync_result.status().to_string();
      ASSERT_TRUE(async_result.is_ok()) << async_result.status().to_string();
      EXPECT_EQ(*sync_result, *async_result);
    }
    auto whole = async_client.read_async("/f").get();
    ASSERT_TRUE(whole.is_ok());
    EXPECT_EQ(*whole, data);
    ASSERT_TRUE(sync_client.read("/f").is_ok());

    // Identical placement + identical op sequence => identical traffic,
    // to the byte, in every bucket.
    EXPECT_EQ(async_dfs.traffic().total_bytes(),
              sync_dfs.traffic().total_bytes());
    EXPECT_EQ(async_dfs.traffic().client_bytes(),
              sync_dfs.traffic().client_bytes());
    EXPECT_EQ(async_dfs.traffic().cross_rack_bytes(),
              sync_dfs.traffic().cross_rack_bytes());
  }
}

TEST(AsyncClient, HundredsOfOperationsInFlight) {
  exec::ThreadPool pool(4);
  MiniDfs dfs = make_dfs(25, 7, &pool);
  Client client(dfs);
  const std::size_t stripe_bytes = data_blocks("pentagon") * kBlockSize;
  const Buffer data = payload(2 * stripe_bytes, 12);
  ASSERT_TRUE(client.write("/f", data, "pentagon", kBlockSize).is_ok());

  // One caller thread, hundreds of outstanding futures.
  std::vector<exec::Future<Result<Buffer>>> reads;
  std::vector<exec::Future<Status>> writes;
  for (std::size_t i = 0; i < 200; ++i) {
    const std::size_t offset = (i * 37) % data.size();
    reads.push_back(client.pread_async(
        "/f", offset, 1 + (i % (2 * kBlockSize))));
  }
  for (std::size_t i = 0; i < 16; ++i) {
    writes.push_back(client.write_async("/w" + std::to_string(i), data,
                                        "pentagon", kBlockSize));
  }
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const std::size_t offset = (i * 37) % data.size();
    const std::size_t len = 1 + (i % (2 * kBlockSize));
    auto result = reads[i].get();
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    const std::size_t want = std::min(len, data.size() - offset);
    ASSERT_EQ(result->size(), want);
    EXPECT_EQ(0, std::memcmp(result->data(), data.data() + offset, want));
  }
  for (auto& status : writes) EXPECT_TRUE(status.get().is_ok());
  EXPECT_EQ(dfs.list_files().size(), 17u);
  EXPECT_TRUE(dfs.scrub().is_ok());
}

// ----------------------------------------------- workload driver mixes

TEST(WorkloadMixes, PreadAndAppendClientsRunCleanly) {
  exec::ThreadPool pool(2);
  MiniDfs dfs = make_dfs(25, 7, &pool);
  WorkloadOptions options;
  options.clients = 3;
  options.ops_per_client = 40;
  options.read_fraction = 0.3;
  options.write_fraction = 0.1;
  options.degraded_fraction = 0.1;
  options.pread_fraction = 0.3;
  options.append_fraction = 0.2;
  options.code_spec = "rs-10-4";
  options.block_size = kBlockSize;
  options.seed = 5;
  WorkloadDriver driver(dfs, options);
  ASSERT_TRUE(driver.preload().is_ok());
  const auto report = driver.run();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->total_errors(), 0u);
  EXPECT_GT(report->pread.latency_us.count(), 0u);
  EXPECT_GT(report->append.latency_us.count(), 0u);
  EXPECT_GE(report->total_ops(),
            options.clients * options.ops_per_client);
  // Append-created files hold the shared payload (or a prefix), and the
  // cluster stays codeword-consistent under the mixed handle traffic.
  EXPECT_TRUE(dfs.scrub().is_ok());
  for (const auto& path : dfs.list_files()) {
    const auto info = dfs.stat(path);
    ASSERT_TRUE(info.is_ok());
    EXPECT_TRUE(info->sealed) << path;
    const auto bytes = dfs.read_file(path);
    ASSERT_TRUE(bytes.is_ok()) << path;
    ASSERT_LE(bytes->size(), driver.payload().size()) << path;
    EXPECT_EQ(0, std::memcmp(bytes->data(), driver.payload().data(),
                             bytes->size()))
        << path << " diverges from the shared payload";
  }
}

// ------------------------------------------- metadata shard equivalence

MiniDfs make_sharded(std::size_t shards, exec::ThreadPool* pool = nullptr) {
  cluster::Topology topology;
  topology.num_nodes = 25;
  MiniDfsOptions options;
  options.meta_shards = shards;
  return MiniDfs(topology, /*seed=*/7, pool, options);
}

/// Streams one file through the handle API, preads three ranges, and
/// captures every client-visible observable.
struct ClientShardRun {
  Buffer whole;
  std::vector<Buffer> ranges;
  std::uint64_t length = 0;
  std::size_t num_stripes = 0;
  double traffic_total = 0;
  double traffic_client = 0;
  std::uint64_t catalog_fp = 0;
};

ClientShardRun run_client_scenario(const std::string& spec,
                                   std::size_t shards, const Buffer& data) {
  MiniDfs dfs = make_sharded(shards);
  Client client(dfs, {.max_inflight_stripes = 2});
  auto writer = client.create("/h/file", spec, kBlockSize);
  EXPECT_TRUE(writer.is_ok()) << writer.status().to_string();
  // Odd-sized chunks exercise the sub-stripe buffering path.
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t len =
        std::min<std::size_t>(3 * kBlockSize - 7, data.size() - offset);
    EXPECT_TRUE(writer->append(ByteSpan(data).subspan(offset, len)).is_ok());
    offset += len;
  }
  EXPECT_TRUE(writer->close().is_ok());

  ClientShardRun run;
  const auto whole = dfs.read_file("/h/file");
  EXPECT_TRUE(whole.is_ok());
  if (whole.is_ok()) run.whole = *whole;
  for (const auto& [off, len] :
       {std::pair<std::size_t, std::size_t>{0, kBlockSize},
        {kBlockSize / 2, 2 * kBlockSize},
        {data.size() - kBlockSize, 2 * kBlockSize}}) {
    const auto range = dfs.pread("/h/file", off, len);
    EXPECT_TRUE(range.is_ok());
    if (range.is_ok()) run.ranges.push_back(*range);
  }
  const auto info = dfs.stat("/h/file");
  EXPECT_TRUE(info.is_ok());
  if (info.is_ok()) {
    run.length = info->length;
    run.num_stripes = info->stripes.size();
  }
  run.traffic_total = dfs.traffic().total_bytes();
  run.traffic_client = dfs.traffic().client_bytes();
  run.catalog_fp = dfs.catalog_fingerprint();
  return run;
}

TEST_P(ClientSchemeTest, StreamingAndPreadAreShardCountInvariant) {
  const std::string spec = GetParam();
  const std::size_t stripe_bytes = data_blocks(spec) * kBlockSize;
  const Buffer data = payload(2 * stripe_bytes + kBlockSize + 9);

  const ClientShardRun one = run_client_scenario(spec, 1, data);
  EXPECT_EQ(one.whole, data);
  for (const std::size_t shards : {std::size_t{4}, std::size_t{16}}) {
    SCOPED_TRACE(spec + " shards=" + std::to_string(shards));
    const ClientShardRun many = run_client_scenario(spec, shards, data);
    EXPECT_EQ(many.whole, one.whole);
    EXPECT_EQ(many.ranges, one.ranges);
    EXPECT_EQ(many.length, one.length);
    EXPECT_EQ(many.num_stripes, one.num_stripes);
    EXPECT_DOUBLE_EQ(many.traffic_total, one.traffic_total);
    EXPECT_DOUBLE_EQ(many.traffic_client, one.traffic_client);
    EXPECT_EQ(many.catalog_fp, one.catalog_fp);
  }
}

TEST(ClientShards, ConcurrentWritersOnSameAndDifferentShards) {
  // Two handle writers streaming concurrently -- one pair of paths picked
  // to hash to the same metadata shard, one to different shards -- must
  // both publish intact under a 16-shard NameNode.
  exec::ThreadPool pool(2);
  MiniDfs dfs = make_sharded(16, &pool);

  // Find a path that collides with "/c/a" and one that does not.
  const std::size_t base = dfs.namenode().shard_of("/c/a");
  std::string same, other;
  for (int i = 0; same.empty() || other.empty(); ++i) {
    const std::string candidate = "/c/b" + std::to_string(i);
    const std::size_t shard = dfs.namenode().shard_of(candidate);
    if (shard == base && same.empty()) same = candidate;
    if (shard != base && other.empty()) other = candidate;
  }

  const Buffer data = payload(data_blocks("pentagon") * kBlockSize * 3, 21);
  for (const auto& partner : {same, other}) {
    SCOPED_TRACE(partner);
    Client client(dfs, {.max_inflight_stripes = 2});
    auto a = client.create("/c/a", "pentagon", kBlockSize);
    auto b = client.create(partner, "pentagon", kBlockSize);
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    std::thread ta([&] {
      EXPECT_TRUE(a->append(data).is_ok());
      EXPECT_TRUE(a->close().is_ok());
    });
    std::thread tb([&] {
      EXPECT_TRUE(b->append(data).is_ok());
      EXPECT_TRUE(b->close().is_ok());
    });
    ta.join();
    tb.join();
    for (const auto& path : {std::string("/c/a"), partner}) {
      const auto read = dfs.read_file(path);
      ASSERT_TRUE(read.is_ok()) << path;
      EXPECT_EQ(*read, data) << path;
    }
    ASSERT_TRUE(dfs.delete_file("/c/a").is_ok());
    ASSERT_TRUE(dfs.delete_file(partner).is_ok());
  }
}

}  // namespace
}  // namespace dblrep::hdfs
