// Placement-policy invariants (cluster/placement.h) and their end-to-end
// consequences through MiniDfs: distinct nodes per stripe (so no node ever
// holds two replicas of one block), rack spreading under rack_aware,
// locality-group pinning under group_per_rack, and the layered-repair
// cross-rack win the rack dimension exists for.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "cluster/placement.h"
#include "cluster/topology.h"
#include "common/rng.h"
#include "ec/registry.h"
#include "hdfs/minidfs.h"

namespace dblrep::cluster {
namespace {

std::vector<NodeId> all_nodes(const Topology& topology) {
  std::vector<NodeId> live(topology.num_nodes);
  for (std::size_t n = 0; n < live.size(); ++n) {
    live[n] = static_cast<NodeId>(n);
  }
  return live;
}

std::map<int, std::size_t> rack_histogram(const Topology& topology,
                                          const std::vector<NodeId>& group) {
  std::map<int, std::size_t> hist;
  for (NodeId node : group) ++hist[topology.rack_of(node)];
  return hist;
}

TEST(Placement, PolicyNamesRoundTrip) {
  for (PlacementPolicy policy : all_placement_policies()) {
    const auto parsed = parse_placement_policy(to_string(policy));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_placement_policy("antigravity").is_ok());
}

TEST(Placement, EveryPolicyPlacesDistinctNodesForEveryCode) {
  Topology topology;
  topology.num_nodes = 24;
  topology.num_racks = 3;
  const auto live = all_nodes(topology);
  Rng rng(7);
  auto specs = ec::paper_code_specs();
  specs.push_back("rs-10-4");
  for (PlacementPolicy policy : all_placement_policies()) {
    for (const auto& spec : specs) {
      const auto code = ec::make_code(spec).value();
      for (int trial = 0; trial < 5; ++trial) {
        const auto group =
            place_stripe_group(policy, topology, *code, live, rng);
        ASSERT_TRUE(group.is_ok()) << spec << " under " << to_string(policy);
        EXPECT_EQ(group->size(), code->num_nodes());
        const std::set<NodeId> distinct(group->begin(), group->end());
        EXPECT_EQ(distinct.size(), group->size())
            << spec << " under " << to_string(policy)
            << ": duplicate node in group";
      }
    }
  }
}

TEST(Placement, RackAwareSpreadsEvenlyAcrossRacks) {
  Topology topology;
  topology.num_nodes = 24;
  topology.num_racks = 3;
  const auto live = all_nodes(topology);
  Rng rng(11);
  const auto code = ec::make_code("rs-10-4").value();  // 14 nodes
  for (int trial = 0; trial < 10; ++trial) {
    const auto group = place_stripe_group(PlacementPolicy::kRackAware,
                                          topology, *code, live, rng);
    ASSERT_TRUE(group.is_ok());
    const auto hist = rack_histogram(topology, *group);
    EXPECT_EQ(hist.size(), 3u) << "group must span all racks";
    std::size_t lo = group->size(), hi = 0;
    for (const auto& [rack, count] : hist) {
      lo = std::min(lo, count);
      hi = std::max(hi, count);
    }
    EXPECT_LE(hi - lo, 1u) << "rack load must be balanced";
  }
}

TEST(Placement, GroupPerRackPinsEachLocalToItsOwnRack) {
  Topology topology;
  topology.num_nodes = 27;
  topology.num_racks = 3;
  const auto live = all_nodes(topology);
  Rng rng(13);
  const auto code = ec::make_code("heptagon-local").value();
  for (int trial = 0; trial < 10; ++trial) {
    const auto group = place_stripe_group(PlacementPolicy::kGroupPerRack,
                                          topology, *code, live, rng);
    ASSERT_TRUE(group.is_ok());
    std::set<int> local0, local1;
    for (std::size_t i = 0; i < 7; ++i) {
      local0.insert(topology.rack_of((*group)[i]));
      local1.insert(topology.rack_of((*group)[7 + i]));
    }
    const int global_rack = topology.rack_of((*group)[14]);
    EXPECT_EQ(local0.size(), 1u);
    EXPECT_EQ(local1.size(), 1u);
    EXPECT_NE(*local0.begin(), *local1.begin());
    EXPECT_NE(global_rack, *local0.begin());
    EXPECT_NE(global_rack, *local1.begin());
  }
}

TEST(Placement, GroupPerRackDegradesGracefully) {
  // 6 racks of 4 nodes cannot hold a heptagon per rack: fall back to
  // rack-aware spreading (distinct nodes, multiple racks), not an error.
  Topology topology;
  topology.num_nodes = 24;
  topology.num_racks = 6;
  Rng rng(17);
  const auto code = ec::make_code("heptagon-local").value();
  const auto group = place_stripe_group(PlacementPolicy::kGroupPerRack,
                                        topology, *code, all_nodes(topology),
                                        rng);
  ASSERT_TRUE(group.is_ok());
  EXPECT_EQ(group->size(), 15u);
  EXPECT_GT(rack_histogram(topology, *group).size(), 1u);

  // Single-rack topologies work for every policy (the paper's testbeds).
  Topology single;
  single.num_nodes = 25;
  for (PlacementPolicy policy : all_placement_policies()) {
    const auto g = place_stripe_group(policy, single, *code,
                                      all_nodes(single), rng);
    ASSERT_TRUE(g.is_ok()) << to_string(policy);
    EXPECT_EQ(std::set<NodeId>(g->begin(), g->end()).size(), 15u);
  }
}

TEST(Placement, FailsWhenLiveSetTooSmall) {
  Topology topology;
  topology.num_nodes = 25;
  Rng rng(19);
  const auto code = ec::make_code("heptagon-local").value();
  const std::vector<NodeId> live = {0, 1, 2, 3, 4};
  for (PlacementPolicy policy : all_placement_policies()) {
    const auto group = place_stripe_group(policy, topology, *code, live, rng);
    EXPECT_FALSE(group.is_ok());
    EXPECT_EQ(group.status().code(), StatusCode::kResourceExhausted);
  }
}

// ----------------------------------------------- MiniDfs end-to-end rack

hdfs::MiniDfsOptions make_options(PlacementPolicy policy, bool layered) {
  hdfs::MiniDfsOptions options;
  options.placement = policy;
  options.layered_repair = layered;
  return options;
}

TEST(MiniDfsPlacement, NoNodeHoldsTwoReplicasOfOneBlock) {
  Topology topology;
  topology.num_nodes = 24;
  topology.num_racks = 3;
  for (PlacementPolicy policy : all_placement_policies()) {
    hdfs::MiniDfs dfs(topology, 23, nullptr, make_options(policy, false));
    const Buffer data = random_buffer(256 * 18, 5);
    ASSERT_TRUE(dfs.write_file("/f", data, "pentagon", 256).is_ok());
    const auto info = *dfs.stat("/f");
    const auto& code = *dfs.code_for("/f").value();
    for (const StripeId stripe : info.stripes) {
      for (std::size_t sym = 0; sym < code.num_symbols(); ++sym) {
        const auto replicas = dfs.catalog().replica_nodes(stripe, sym);
        const std::set<NodeId> distinct(replicas.begin(), replicas.end());
        EXPECT_EQ(distinct.size(), replicas.size())
            << to_string(policy) << ": replicas of symbol " << sym
            << " share a node";
      }
    }
  }
}

TEST(MiniDfsPlacement, LayeredRepairMatchesUnlayeredBytesWithFewerCrossRack) {
  // Same seed and policy, layered on vs off: repaired datanode contents
  // must be byte-identical, totals equal, and the layered run must move
  // fewer (never more) bytes across racks.
  Topology topology;
  topology.num_nodes = 24;
  topology.num_racks = 3;
  const Buffer data = random_buffer(512 * 10, 6);

  auto run_repair = [&](bool layered, double* cross, double* total,
                        std::map<std::pair<NodeId, SlotAddress>, Buffer>*
                            contents) -> void {
    hdfs::MiniDfs dfs(topology, 31, nullptr,
                      make_options(PlacementPolicy::kFlat, layered));
    ASSERT_TRUE(dfs.write_file("/f", data, "rs-10-4", 512).is_ok());
    const auto info = *dfs.stat("/f");
    const auto group = dfs.catalog().stripe(info.stripes.front()).group;
    ASSERT_TRUE(dfs.fail_node(group[0]).is_ok());
    dfs.traffic().reset();
    ASSERT_TRUE(dfs.repair_all().is_ok());
    *cross = dfs.traffic().cross_rack_bytes();
    *total = dfs.traffic().total_bytes();
    for (std::size_t n = 0; n < topology.num_nodes; ++n) {
      auto& dn = dfs.datanode(static_cast<NodeId>(n));
      for (const auto& address : dn.stored_addresses()) {
        (*contents)[{static_cast<NodeId>(n), address}] = *dn.get(address);
      }
    }
    EXPECT_EQ(*dfs.read_file("/f"), data);
  };

  double plain_cross = 0, plain_total = 0, layered_cross = 0,
         layered_total = 0;
  std::map<std::pair<NodeId, SlotAddress>, Buffer> plain_contents,
      layered_contents;
  run_repair(false, &plain_cross, &plain_total, &plain_contents);
  run_repair(true, &layered_cross, &layered_total, &layered_contents);

  EXPECT_EQ(plain_contents, layered_contents);
  EXPECT_DOUBLE_EQ(plain_total, layered_total);
  EXPECT_LE(layered_cross, plain_cross);
  // rs-10-4 pulls 10 helpers; under flat placement over 3 racks some rack
  // always contributes >= 2 of them, so layering strictly wins here.
  EXPECT_LT(layered_cross, plain_cross);
  EXPECT_GT(plain_cross, 0.0);
}

TEST(MiniDfsPlacement, GroupPerRackLocalRepairBeatsFlatOnCrossRackBytes) {
  // The acceptance scenario: heptagon-local under group_per_rack + layered
  // repair vs rack-blind flat placement, one failed local node, 3 racks.
  Topology topology;
  topology.num_nodes = 27;
  topology.num_racks = 3;
  const Buffer data = random_buffer(256 * 40, 7);

  auto repair_cross_bytes = [&](PlacementPolicy policy,
                                bool layered) -> double {
    hdfs::MiniDfs dfs(topology, 37, nullptr, make_options(policy, layered));
    EXPECT_TRUE(
        dfs.write_file("/f", data, "heptagon-local", 256).is_ok());
    const auto info = *dfs.stat("/f");
    const auto group = dfs.catalog().stripe(info.stripes.front()).group;
    EXPECT_TRUE(dfs.fail_node(group[2]).is_ok());
    dfs.traffic().reset();
    EXPECT_TRUE(dfs.repair_all().is_ok());
    EXPECT_EQ(*dfs.read_file("/f"), data);
    return dfs.traffic().cross_rack_bytes();
  };

  const double flat = repair_cross_bytes(PlacementPolicy::kFlat, false);
  const double layered_gpr =
      repair_cross_bytes(PlacementPolicy::kGroupPerRack, true);
  // A local node's repair stays entirely inside its rack when the local
  // lives in one rack; flat placement scatters the heptagon across racks.
  EXPECT_GT(flat, 0.0);
  EXPECT_DOUBLE_EQ(layered_gpr, 0.0);
}

TEST(MiniDfsPlacement, LayeredDegradedReadDeliversSameBytes) {
  Topology topology;
  topology.num_nodes = 24;
  topology.num_racks = 3;
  const Buffer data = random_buffer(256 * 9, 8);
  Buffer plain_block, layered_block;
  double plain_client = 0, layered_client = 0;
  for (const bool layered : {false, true}) {
    hdfs::MiniDfs dfs(topology, 41, nullptr,
                      make_options(PlacementPolicy::kFlat, layered));
    ASSERT_TRUE(dfs.write_file("/f", data, "pentagon", 256).is_ok());
    const auto info = *dfs.stat("/f");
    const auto& code = *dfs.code_for("/f").value();
    for (std::size_t slot : code.layout().slots_of_symbol(0)) {
      ASSERT_TRUE(
          dfs.fail_node(dfs.catalog().node_of({info.stripes[0], slot}))
              .is_ok());
    }
    dfs.traffic().reset();
    auto block = dfs.read_block("/f", 0);
    ASSERT_TRUE(block.is_ok());
    (layered ? layered_block : plain_block) = std::move(*block);
    (layered ? layered_client : plain_client) = dfs.traffic().client_bytes();
  }
  EXPECT_EQ(plain_block, layered_block);
  // Per-rack aggregation may only shrink what reaches the client.
  EXPECT_LE(layered_client, plain_client);
}

}  // namespace
}  // namespace dblrep::cluster
