// Tests for src/common: status/result, bytes, rng, stats, tables.
#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"

namespace dblrep {
namespace {

// ---------------------------------------------------------------- check.h

TEST(Check, PassingCheckDoesNothing) { DBLREP_CHECK(1 + 1 == 2); }

TEST(Check, FailingCheckThrowsContractViolation) {
  EXPECT_THROW(DBLREP_CHECK(false), ContractViolation);
}

TEST(Check, MessageCarriesExpressionAndOperands) {
  try {
    DBLREP_CHECK_EQ(2 + 2, 5);
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2"), std::string::npos);
    EXPECT_NE(what.find("lhs=4"), std::string::npos);
    EXPECT_NE(what.find("rhs=5"), std::string::npos);
  }
}

TEST(Check, ComparisonMacrosHonorBoundaries) {
  DBLREP_CHECK_LE(3, 3);
  DBLREP_CHECK_GE(3, 3);
  EXPECT_THROW(DBLREP_CHECK_LT(3, 3), ContractViolation);
  EXPECT_THROW(DBLREP_CHECK_GT(3, 3), ContractViolation);
  EXPECT_THROW(DBLREP_CHECK_NE(3, 3), ContractViolation);
}

// --------------------------------------------------------------- status.h

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = data_loss_error("stripe 7 gone");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.to_string(), "DATA_LOSS: stripe 7 gone");
}

TEST(Status, EveryFactoryMapsToItsCode) {
  EXPECT_EQ(not_found_error("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(unavailable_error("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(invalid_argument_error("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(already_exists_error("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(failed_precondition_error("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(corruption_error("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(resource_exhausted_error("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(internal_error("x").code(), StatusCode::kInternal);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r = not_found_error("nope");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOnErrorIsContractViolation) {
  Result<int> r = internal_error("boom");
  EXPECT_THROW((void)r.value(), ContractViolation);
}

TEST(Result, ConstructingFromOkStatusIsContractViolation) {
  EXPECT_THROW(Result<int>{Status::ok()}, ContractViolation);
}

// ---------------------------------------------------------------- bytes.h

TEST(Bytes, XorIntoIsInvolutive) {
  Buffer a = random_buffer(1024 + 7, 1);  // odd size exercises the tail loop
  const Buffer a_orig = a;
  const Buffer b = random_buffer(1024 + 7, 2);
  xor_into(a, b);
  EXPECT_NE(a, a_orig);
  xor_into(a, b);
  EXPECT_EQ(a, a_orig);
}

TEST(Bytes, XorBuffersMatchesManualXor) {
  const Buffer a = random_buffer(33, 3);
  const Buffer b = random_buffer(33, 4);
  const Buffer c = xor_buffers(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(c[i], a[i] ^ b[i]);
}

TEST(Bytes, XorSizeMismatchIsContractViolation) {
  Buffer a(8), b(9);
  EXPECT_THROW(xor_into(a, b), ContractViolation);
}

TEST(Bytes, RandomBufferIsDeterministicPerSeed) {
  EXPECT_EQ(random_buffer(100, 7), random_buffer(100, 7));
  EXPECT_NE(random_buffer(100, 7), random_buffer(100, 8));
}

TEST(Bytes, Crc32cKnownVector) {
  // "123456789" -> 0xE3069283 is the canonical CRC-32C check value.
  const std::string s = "123456789";
  const ByteSpan span(reinterpret_cast<const std::uint8_t*>(s.data()),
                      s.size());
  EXPECT_EQ(crc32c(span), 0xE3069283u);
}

TEST(Bytes, Crc32cDetectsSingleBitFlip) {
  Buffer data = random_buffer(256, 9);
  const std::uint32_t before = crc32c(data);
  data[100] ^= 0x40;
  EXPECT_NE(crc32c(data), before);
}

TEST(Bytes, HexPreviewTruncates) {
  const Buffer data{0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(hex_preview(data), "deadbeef");
  EXPECT_EQ(hex_preview(data, 2), "dead...");
}

TEST(Bytes, FormatBytesPicksUnits) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(3.0 * 1024 * 1024 * 1024), "3.00 GiB");
}

// ------------------------------------------------------------------ rng.h

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);  // all of -2..2 hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ExponentialHasRoughlyCorrectMean) {
  Rng rng(4);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_without_replacement(25, 10);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (auto v : sample) EXPECT_LT(v, 25u);
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(6);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

// ---------------------------------------------------------------- stats.h

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZeroes) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h({0.0, 10.0, 20.0, 30.0});
  for (double x : {-5.0, 1.0, 5.0, 9.0, 15.0, 25.0, 35.0}) h.add(x);
  EXPECT_EQ(h.total(), 7u);
  const auto& counts = h.counts();
  EXPECT_EQ(counts[0], 1u);  // underflow
  EXPECT_EQ(counts[1], 3u);  // [0,10)
  EXPECT_EQ(counts[2], 1u);  // [10,20)
  EXPECT_EQ(counts[3], 1u);  // [20,30)
  EXPECT_EQ(counts[4], 1u);  // overflow
  EXPECT_GT(h.quantile(0.5), 0.0);
  EXPECT_LE(h.quantile(0.5), 10.0);
}

TEST(Histogram, UnsortedBoundsRejected) {
  EXPECT_THROW(Histogram({1.0, 1.0}), ContractViolation);
  EXPECT_THROW(Histogram({2.0, 1.0}), ContractViolation);
}

TEST(RunningStat, MergeMatchesSequentialAdds) {
  // Split one sample stream across three "threads" and merge: count, sum,
  // mean, min/max exact; variance to combination-formula precision.
  const std::vector<double> all = {2.0, 4.0, 4.0, 4.0, 5.0,
                                   5.0, 7.0, 9.0, -1.0, 12.5};
  RunningStat whole;
  for (double x : all) whole.add(x);
  RunningStat parts[3];
  for (std::size_t i = 0; i < all.size(); ++i) parts[i % 3].add(all[i]);
  RunningStat merged;
  for (const auto& part : parts) merged.merge(part);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9);
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a;
  RunningStat b;
  b.add(3.0);
  b.add(5.0);
  a.merge(b);  // empty <- populated
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  RunningStat empty;
  a.merge(empty);  // populated <- empty is a no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(Histogram, MergeAddsCountsBucketwise) {
  Histogram a({0.0, 10.0, 20.0});
  Histogram b({0.0, 10.0, 20.0});
  a.add(5.0);
  a.add(15.0);
  b.add(5.0);
  b.add(25.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.counts()[1], 2u);  // [0,10)
  EXPECT_EQ(a.counts()[2], 1u);  // [10,20)
  EXPECT_EQ(a.counts()[3], 1u);  // overflow
  Histogram mismatched({0.0, 5.0});
  EXPECT_THROW(a.merge(mismatched), ContractViolation);
}

TEST(Histogram, LogSpacedCoversRangeMonotonically) {
  const Histogram h = Histogram::log_spaced(1.0, 1e6, 4);
  // 6 decades x 4 buckets each, within one bucket of rounding.
  EXPECT_GE(h.counts().size(), 24u);
  Histogram copy = h;
  copy.add(0.5);      // underflow
  copy.add(1e7);      // overflow
  copy.add(1234.5);   // interior
  EXPECT_EQ(copy.total(), 3u);
  EXPECT_EQ(copy.counts().front(), 1u);
  EXPECT_EQ(copy.counts().back(), 1u);
}

// ---------------------------------------------------------------- table.h

TEST(TextTable, AlignsAndRendersAllRows) {
  TextTable t({"code", "overhead"});
  t.add_row({"pentagon", "2.22x"});
  t.add_row({"3-rep", "3x"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("pentagon"), std::string::npos);
  EXPECT_NE(out.find("3-rep"), std::string::npos);
  EXPECT_NE(out.find("| code"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, ArityMismatchIsContractViolation) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Format, SciMatchesPaperStyle) {
  EXPECT_EQ(fmt_sci(1.2e9), "1.20e+09");
  EXPECT_EQ(fmt_sci(2.68e7), "2.68e+07");
}

TEST(Format, PercentAndDouble) {
  EXPECT_EQ(fmt_pct(0.938), "93.8%");
  EXPECT_EQ(fmt_double(2.2222, 2), "2.22");
}

}  // namespace
}  // namespace dblrep
