// Tests pinning the paper's repair-bandwidth claims to exact numbers:
//   * pentagon single-node repair = 4 plain copies (repair-by-transfer);
//   * pentagon two-node repair = 10 blocks total (Section 2.1);
//   * degraded read of a doubly-lost block: pentagon 3 blocks vs
//     (10,9) RAID+m 9 blocks (Section 3.1);
// plus executor-level error handling.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "ec/local_polygon.h"
#include "ec/polygon.h"
#include "ec/raid_mirror.h"
#include "ec/replication.h"
#include "ec/repair.h"

namespace dblrep::ec {
namespace {

constexpr std::size_t kBlockSize = 128;

std::vector<Buffer> random_data(const CodeScheme& code, std::uint64_t seed) {
  std::vector<Buffer> data;
  for (std::size_t i = 0; i < code.data_blocks(); ++i) {
    data.push_back(random_buffer(kBlockSize, seed * 100 + i));
  }
  return data;
}

SlotStore store_without_nodes(const CodeScheme& code,
                              const std::vector<Buffer>& data,
                              const std::set<NodeIndex>& failed) {
  const auto slots = code.encode(data);
  SlotStore store;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (!failed.contains(code.layout().node_of_slot(s))) store[s] = slots[s];
  }
  return store;
}

// ------------------------------------------------ pentagon bandwidths

TEST(PentagonRepair, SingleNodeIsRepairByTransfer) {
  PolygonCode pentagon(5);
  for (NodeIndex failed = 0; failed < 5; ++failed) {
    const auto plan = pentagon.plan_node_repair(failed);
    ASSERT_TRUE(plan.is_ok());
    // Exactly n-1 = 4 transfers, all plain copies, no partial parities.
    EXPECT_EQ(plan->network_units(), 4u);
    EXPECT_EQ(plan->partial_parity_sends(), 0u);
    for (const auto& send : plan->aggregates) {
      EXPECT_TRUE(send.is_plain_copy());
    }
  }
}

TEST(PentagonRepair, TwoNodeRepairCostsTenBlocks) {
  // Section 2.1: "the overall network data transfer incurred in repairing
  // the two nodes is 10 blocks" -- 6 copies + 3 partial parities + 1 copy
  // of the rebuilt shared block between the replacements.
  PolygonCode pentagon(5);
  for (NodeIndex a = 0; a < 5; ++a) {
    for (NodeIndex b = a + 1; b < 5; ++b) {
      const auto plan = pentagon.plan_multi_node_repair({a, b});
      ASSERT_TRUE(plan.is_ok());
      EXPECT_EQ(plan->network_units(), 10u) << "pair " << a << "," << b;
      // The paper's canonical plan sends three 3-term partial parities; the
      // planner may fold terms differently (e.g. 3+2+1), but the shared
      // block must be rebuilt from folded multi-term sends, never from 9
      // separate copies.
      EXPECT_GE(plan->partial_parity_sends(), 2u) << "pair " << a << "," << b;
    }
  }
}

TEST(PentagonRepair, TwoNodePartialParitiesComeFromSurvivorsOnly) {
  PolygonCode pentagon(5);
  const auto plan = pentagon.plan_multi_node_repair({0, 1});
  ASSERT_TRUE(plan.is_ok());
  std::set<NodeIndex> partial_sources;
  for (const auto& send : plan->aggregates) {
    if (!send.is_plain_copy()) partial_sources.insert(send.from_node);
  }
  EXPECT_FALSE(partial_sources.empty());
  for (NodeIndex src : partial_sources) {
    EXPECT_TRUE(src == 2 || src == 3 || src == 4) << "source " << src;
  }
}

TEST(PentagonRepair, TwoNodeRepairRebuildsCorrectBytes) {
  PolygonCode pentagon(5);
  const auto data = random_data(pentagon, 1);
  const auto pristine = pentagon.encode(data);
  PlanExecutor executor(pentagon.layout());
  auto store = store_without_nodes(pentagon, data, {1, 3});
  const auto plan = pentagon.plan_multi_node_repair({1, 3});
  ASSERT_TRUE(plan.is_ok());
  ASSERT_TRUE(executor.execute(*plan, store).is_ok());
  for (std::size_t s = 0; s < pristine.size(); ++s) {
    EXPECT_EQ(store.at(s), pristine[s]) << "slot " << s;
  }
}

TEST(HeptagonRepair, SingleNodeIsSixCopies) {
  PolygonCode heptagon(7);
  const auto plan = heptagon.plan_node_repair(3);
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan->network_units(), 6u);
  EXPECT_EQ(plan->partial_parity_sends(), 0u);
}

TEST(HeptagonRepair, TwoNodeRepairCostsSixteenBlocks) {
  // Generalization of the pentagon's 10: 2(n-2) copies + (n-2) partials +
  // 1 inter-replacement copy = 3(n-2)+1 = 16 for n=7.
  PolygonCode heptagon(7);
  const auto plan = heptagon.plan_multi_node_repair({2, 5});
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan->network_units(), 16u);
  EXPECT_GE(plan->partial_parity_sends(), 4u);
}

// -------------------------------------------- degraded-read bandwidths

TEST(DegradedRead, PentagonDoublyLostBlockCostsThreeBlocks) {
  // Section 3.1: both replica holders down -> 3 partial parities suffice.
  PolygonCode pentagon(5);
  for (NodeIndex a = 0; a < 5; ++a) {
    for (NodeIndex b = a + 1; b < 5; ++b) {
      const std::size_t sym = pentagon.shared_symbol(a, b);
      const auto plan = pentagon.plan_degraded_read(sym, {a, b});
      ASSERT_TRUE(plan.is_ok());
      EXPECT_EQ(plan->network_units(), 3u);
      EXPECT_EQ(plan->partial_parity_sends(), 3u);
    }
  }
}

TEST(DegradedRead, RaidMirrorDoublyLostBlockCostsNineBlocks) {
  // Section 3.1: the (10,9) RAID+m needs k = 9 blocks.
  RaidMirrorCode raidm(9);
  for (std::size_t sym = 0; sym < raidm.num_symbols(); ++sym) {
    const auto [a, b] = raidm.mirror_nodes(sym);
    const auto plan = raidm.plan_degraded_read(sym, {a, b});
    ASSERT_TRUE(plan.is_ok());
    EXPECT_EQ(plan->network_units(), 9u) << "symbol " << sym;
  }
}

TEST(DegradedRead, SurvivingReplicaIsSingleCopy) {
  PolygonCode pentagon(5);
  // Symbol on edge {0,1}; only node 0 down -> copy from node 1.
  const std::size_t sym = pentagon.shared_symbol(0, 1);
  const auto plan = pentagon.plan_degraded_read(sym, {0});
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan->network_units(), 1u);
  ASSERT_EQ(plan->aggregates.size(), 1u);
  EXPECT_TRUE(plan->aggregates[0].is_plain_copy());
  EXPECT_EQ(plan->aggregates[0].from_node, 1);
  EXPECT_EQ(plan->aggregates[0].to_node, kClientNode);
}

TEST(DegradedRead, HeptagonDoublyLostBlockCostsFiveBlocks) {
  PolygonCode heptagon(7);
  const std::size_t sym = heptagon.shared_symbol(1, 4);
  const auto plan = heptagon.plan_degraded_read(sym, {1, 4});
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan->network_units(), 5u);  // n - 2
}

TEST(DegradedRead, DeliversCorrectBytesUnderDoubleFailure) {
  PolygonCode pentagon(5);
  const auto data = random_data(pentagon, 2);
  const auto symbols = pentagon.encode_symbols(data);
  PlanExecutor executor(pentagon.layout());
  for (NodeIndex a = 0; a < 5; ++a) {
    for (NodeIndex b = a + 1; b < 5; ++b) {
      const std::size_t sym = pentagon.shared_symbol(a, b);
      auto store = store_without_nodes(pentagon, data, {a, b});
      const auto plan = pentagon.plan_degraded_read(sym, {a, b});
      ASSERT_TRUE(plan.is_ok());
      auto run = executor.execute(*plan, store);
      ASSERT_TRUE(run.is_ok());
      ASSERT_EQ(run->size(), 1u);
      EXPECT_EQ((*run)[0], symbols[sym]);
    }
  }
}

TEST(DegradedRead, UnrecoverablePatternRefuses) {
  PolygonCode pentagon(5);
  const auto plan = pentagon.plan_degraded_read(0, {0, 1, 2});
  EXPECT_FALSE(plan.is_ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kDataLoss);
}

// ------------------------------------------------- heptagon-local plans

TEST(HeptagonLocalRepair, SingleFailureRepairsWithinTheRack) {
  LocalPolygonCode code(7);
  const auto plan = code.plan_node_repair(3);  // node in local 0
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan->network_units(), 6u);  // repair-by-transfer, 6 blocks
  for (const auto& send : plan->aggregates) {
    EXPECT_EQ(code.rack_of_node(send.from_node), 0)
        << "single-node repair must stay rack-local";
  }
}

TEST(HeptagonLocalRepair, GlobalNodeRepairRebuildsBothParities) {
  LocalPolygonCode code(7);
  const auto data = random_data(code, 3);
  const auto pristine = code.encode(data);
  PlanExecutor executor(code.layout());
  auto store = store_without_nodes(code, data, {code.global_node()});
  const auto plan = code.plan_node_repair(code.global_node());
  ASSERT_TRUE(plan.is_ok());
  ASSERT_TRUE(executor.execute(*plan, store).is_ok());
  for (auto slot : code.layout().slots_on_node(code.global_node())) {
    EXPECT_EQ(store.at(slot), pristine[slot]);
  }
}

TEST(HeptagonLocalRepair, ThreeFailuresInOneLocalRecoverExactly) {
  LocalPolygonCode code(7);
  const auto data = random_data(code, 4);
  const auto pristine = code.encode(data);
  PlanExecutor executor(code.layout());
  const std::set<NodeIndex> failed{0, 1, 2};
  auto store = store_without_nodes(code, data, failed);
  const auto plan = code.plan_multi_node_repair(failed);
  ASSERT_TRUE(plan.is_ok());
  ASSERT_TRUE(executor.execute(*plan, store).is_ok());
  for (NodeIndex n : failed) {
    for (auto slot : code.layout().slots_on_node(n)) {
      EXPECT_EQ(store.at(slot), pristine[slot]);
    }
  }
}

TEST(HeptagonLocalRepair, TwoFailuresInOneLocalStayLocal) {
  LocalPolygonCode code(7);
  const auto plan = code.plan_multi_node_repair({8, 12});  // both in local 1
  ASSERT_TRUE(plan.is_ok());
  for (const auto& send : plan->aggregates) {
    EXPECT_EQ(code.rack_of_node(send.from_node), 1)
        << "two-failure repair must not touch the other local or globals";
  }
}

// ----------------------------------------------------- executor checks

TEST(PlanExecutor, RefusesPlanReadingFromWrongNode) {
  PolygonCode pentagon(5);
  PlanExecutor executor(pentagon.layout());
  const auto data = random_data(pentagon, 5);
  auto store = store_without_nodes(pentagon, data, {});
  RepairPlan bogus;
  // Slot 0 lives on node 0; claim to send it from node 3.
  bogus.aggregates.push_back({3, kClientNode, {{0, 1}}, {}});
  bogus.reconstructions.push_back(
      {0, Reconstruction::kClientSlot, {{0, 1}}, {}});
  const auto run = executor.execute(bogus, store);
  EXPECT_FALSE(run.is_ok());
  EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PlanExecutor, RefusesMissingSlot) {
  PolygonCode pentagon(5);
  PlanExecutor executor(pentagon.layout());
  const auto data = random_data(pentagon, 6);
  auto store = store_without_nodes(pentagon, data, {0});
  RepairPlan bogus;
  const std::size_t dead_slot = pentagon.layout().slots_on_node(0)[0];
  bogus.aggregates.push_back(
      {0, kClientNode, {{dead_slot, 1}}, {}});
  bogus.reconstructions.push_back(
      {0, Reconstruction::kClientSlot, {{0, 1}}, {}});
  const auto run = executor.execute(bogus, store);
  EXPECT_FALSE(run.is_ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
}

TEST(PlanExecutor, RefusesAggregateDeliveredToWrongSite) {
  PolygonCode pentagon(5);
  PlanExecutor executor(pentagon.layout());
  const auto data = random_data(pentagon, 7);
  auto store = store_without_nodes(pentagon, data, {});
  RepairPlan bogus;
  bogus.aggregates.push_back(
      {1, 2, {{pentagon.layout().slots_on_node(1)[0], 1}}, {}});
  // Reconstruction wants delivery at the client, but aggregate goes to N2.
  bogus.reconstructions.push_back(
      {0, Reconstruction::kClientSlot, {{0, 1}}, {}});
  const auto run = executor.execute(bogus, store);
  EXPECT_FALSE(run.is_ok());
}

TEST(RepairPlan, ToStringMentionsPartialParities) {
  PolygonCode pentagon(5);
  const auto plan = pentagon.plan_multi_node_repair({0, 1});
  ASSERT_TRUE(plan.is_ok());
  const std::string text = plan->to_string();
  EXPECT_NE(text.find("partial parities"), std::string::npos);
  EXPECT_NE(text.find("10 network units"), std::string::npos);
}

}  // namespace
}  // namespace dblrep::ec
