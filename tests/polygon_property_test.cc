// Parameterized property sweep over polygon codes K_n, n = 3..10, pinning
// the closed-form costs the paper's constructions generalize to:
//   * storage overhead  2*C(n,2) / (C(n,2)-1)
//   * single-node repair = n-1 plain copies (repair-by-transfer)
//   * two-node repair    = 3(n-2)+1 blocks
//   * degraded read of a doubly-lost block = n-2 blocks
//   * any n-2 nodes suffice to decode; any 3 failures are fatal (n >= 4)
// plus the same sweep for the local variant where it exists.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "ec/local_polygon.h"
#include "ec/polygon.h"
#include "ec/raid_mirror.h"
#include "reliability/markov.h"

namespace dblrep::ec {
namespace {

constexpr std::size_t kBlockSize = 96;

class PolygonSweep : public ::testing::TestWithParam<int> {};

TEST_P(PolygonSweep, StructuralCounts) {
  const int n = GetParam();
  PolygonCode code(n);
  const std::size_t edges = PolygonCode::num_edges(n);
  EXPECT_EQ(code.params().num_symbols, edges);
  EXPECT_EQ(code.params().data_blocks, edges - 1);
  EXPECT_EQ(code.params().stored_blocks, 2 * edges);
  for (NodeIndex v = 0; v < n; ++v) {
    EXPECT_EQ(code.layout().slots_on_node(v).size(),
              static_cast<std::size_t>(n - 1));
  }
}

TEST_P(PolygonSweep, RepairCostsFollowClosedForms) {
  const int n = GetParam();
  PolygonCode code(n);
  EXPECT_EQ(code.plan_node_repair(0)->network_units(),
            static_cast<std::size_t>(n - 1));
  EXPECT_EQ(code.plan_multi_node_repair({0, 1})->network_units(),
            static_cast<std::size_t>(3 * (n - 2) + 1));
  EXPECT_EQ(code.plan_degraded_read(code.shared_symbol(0, 1), {0, 1})
                ->network_units(),
            static_cast<std::size_t>(n - 2));
}

TEST_P(PolygonSweep, AnyNMinusTwoNodesDecode) {
  const int n = GetParam();
  PolygonCode code(n);
  // Equivalent statement: every 2-subset of failures is recoverable.
  for (NodeIndex a = 0; a < n; ++a) {
    for (NodeIndex b = a + 1; b < n; ++b) {
      EXPECT_TRUE(code.is_recoverable({a, b}));
    }
  }
  if (n >= 4) {
    EXPECT_FALSE(code.is_recoverable({0, 1, 2}));
  }
}

TEST_P(PolygonSweep, RandomizedRepairRoundTrip) {
  const int n = GetParam();
  PolygonCode code(n);
  Rng rng(static_cast<std::uint64_t>(n));
  std::vector<Buffer> data;
  for (std::size_t i = 0; i < code.data_blocks(); ++i) {
    data.push_back(random_buffer(kBlockSize, rng.next_u64()));
  }
  const auto pristine = code.encode(data);
  PlanExecutor executor(code.layout());
  for (int trial = 0; trial < 8; ++trial) {
    const auto picks = rng.sample_without_replacement(
        static_cast<std::size_t>(n), 2);
    const std::set<NodeIndex> failed{static_cast<NodeIndex>(picks[0]),
                                     static_cast<NodeIndex>(picks[1])};
    SlotStore store;
    for (std::size_t s = 0; s < pristine.size(); ++s) {
      if (!failed.contains(code.layout().node_of_slot(s))) {
        store[s] = pristine[s];
      }
    }
    const auto plan = code.plan_multi_node_repair(failed);
    ASSERT_TRUE(plan.is_ok());
    ASSERT_TRUE(executor.execute(*plan, store).is_ok());
    for (std::size_t s = 0; s < pristine.size(); ++s) {
      ASSERT_EQ(store.at(s), pristine[s]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kn, PolygonSweep, ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

class LocalPolygonSweep : public ::testing::TestWithParam<int> {};

TEST_P(LocalPolygonSweep, ToleratesAnyThreeFailures) {
  const int n = GetParam();
  LocalPolygonCode code(n);
  const auto total = static_cast<NodeIndex>(code.num_nodes());
  for (NodeIndex a = 0; a < total; ++a) {
    for (NodeIndex b = a + 1; b < total; ++b) {
      for (NodeIndex c = b + 1; c < total; ++c) {
        EXPECT_TRUE(code.is_recoverable({a, b, c}))
            << "n=" << n << " {" << a << "," << b << "," << c << "}";
      }
    }
  }
}

TEST_P(LocalPolygonSweep, OverheadBeatsLocalPolygonPair) {
  // The local code adds exactly 2 global blocks over two standalone
  // polygons: overhead = bare + 1/k_local.
  const int n = GetParam();
  LocalPolygonCode local(n);
  PolygonCode bare(n);
  EXPECT_GT(local.params().storage_overhead(),
            bare.params().storage_overhead());
  EXPECT_NEAR(local.params().storage_overhead(),
              bare.params().storage_overhead() +
                  1.0 / static_cast<double>(local.local_data_blocks()),
              1e-12);
  EXPECT_EQ(local.params().fault_tolerance, 3);
}

INSTANTIATE_TEST_SUITE_P(Kn, LocalPolygonSweep, ::testing::Values(4, 5, 6, 7),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// ------------------------------------------------ lumping cross-check

/// A structurally identical clone of the pentagon that the reliability
/// engine does NOT recognize, forcing the exact-subset fallback signature.
/// Its MTTDL must match the lumped PolygonCode chain bit-for-bit, which
/// validates the symmetry lumping end to end.
class OpaquePentagon final : public CodeScheme {
 public:
  OpaquePentagon() : CodeScheme(make_params(), make_layout(), make_generator()) {}

 private:
  static CodeParams make_params() {
    PolygonCode reference(5);
    CodeParams params = reference.params();
    params.name = "opaque-pentagon";
    return params;
  }
  static StripeLayout make_layout() {
    PolygonCode reference(5);
    return reference.layout();
  }
  static gf::Matrix make_generator() {
    PolygonCode reference(5);
    return reference.generator();
  }
};

TEST(ReliabilityLumping, ExactSubsetChainMatchesLumpedChain) {
  rel::ReliabilityParams params;
  params.node_mtbf_hours = 500.0;  // hot rates keep the check sensitive
  params.node_mttr_hours = 25.0;
  params.system_nodes = 25;

  PolygonCode lumped(5);
  OpaquePentagon opaque;
  EXPECT_EQ(rel::failure_signature(opaque, {0, 3}), (rel::Signature{0, 3}));

  const rel::GroupMarkovModel lumped_model(lumped, params);
  const rel::GroupMarkovModel exact_model(opaque, params);
  EXPECT_LE(lumped_model.num_states(), 3u);
  EXPECT_GT(exact_model.num_states(), 3u);  // 1 + 5 + 10 subsets
  EXPECT_NEAR(exact_model.mttdl_group_hours(),
              lumped_model.mttdl_group_hours(),
              1e-6 * lumped_model.mttdl_group_hours());
}

TEST(ReliabilityLumping, ExactSubsetChainMatchesForRaidMirror) {
  // Same trick for the pair-structured signature.
  class OpaqueRaidm final : public CodeScheme {
   public:
    OpaqueRaidm() : CodeScheme(params_of(), layout_of(), generator_of()) {}

   private:
    static CodeParams params_of() {
      RaidMirrorCode reference(4);
      CodeParams params = reference.params();
      params.name = "opaque-raidm";
      return params;
    }
    static StripeLayout layout_of() { return RaidMirrorCode(4).layout(); }
    static gf::Matrix generator_of() { return RaidMirrorCode(4).generator(); }
  };

  rel::ReliabilityParams params;
  params.node_mtbf_hours = 500.0;
  params.node_mttr_hours = 25.0;
  params.system_nodes = 25;

  RaidMirrorCode lumped(4);
  OpaqueRaidm opaque;
  const rel::GroupMarkovModel lumped_model(lumped, params);
  const rel::GroupMarkovModel exact_model(opaque, params);
  EXPECT_LT(lumped_model.num_states(), exact_model.num_states());
  EXPECT_NEAR(exact_model.mttdl_group_hours(),
              lumped_model.mttdl_group_hours(),
              1e-6 * lumped_model.mttdl_group_hours());
}

}  // namespace
}  // namespace dblrep::ec
