// Tests for the transient-failure repair-traffic simulation.
#include <gtest/gtest.h>

#include "cluster/transient_sim.h"
#include "ec/registry.h"

namespace dblrep::cluster {
namespace {

TEST(RepairMultiplier, MatchesCodeStructure) {
  // Repair-by-transfer and mirrored schemes move exactly what was lost.
  EXPECT_DOUBLE_EQ(
      repair_traffic_multiplier(*ec::make_code("pentagon").value()), 1.0);
  EXPECT_DOUBLE_EQ(
      repair_traffic_multiplier(*ec::make_code("heptagon").value()), 1.0);
  EXPECT_DOUBLE_EQ(repair_traffic_multiplier(*ec::make_code("3-rep").value()),
                   1.0);
  EXPECT_DOUBLE_EQ(
      repair_traffic_multiplier(*ec::make_code("raidm-9").value()), 1.0);
  // Reed-Solomon reads k blocks to rebuild one.
  EXPECT_DOUBLE_EQ(
      repair_traffic_multiplier(*ec::make_code("rs-10-4").value()), 10.0);
}

TEST(TransientSim, ZeroTimeoutRepairsEveryOutage) {
  TransientSimConfig config;
  config.repair_timeout_hours = 0.0;
  config.horizon_hours = 24 * 90;
  config.seed = 3;
  const auto code = ec::make_code("pentagon").value();
  const auto report = simulate_transient_failures(*code, config);
  ASSERT_GT(report.outages, 0u);
  EXPECT_EQ(report.repairs_triggered, report.outages);
  EXPECT_DOUBLE_EQ(report.masked_fraction(), 0.0);
}

TEST(TransientSim, LongTimeoutMasksMostOutages) {
  TransientSimConfig config;
  config.mean_outage_hours = 0.25;
  config.repair_timeout_hours = 2.0;  // 8x the mean outage
  config.seed = 4;
  const auto code = ec::make_code("pentagon").value();
  const auto report = simulate_transient_failures(*code, config);
  ASSERT_GT(report.outages, 0u);
  // P(outage > 8 * mean) = e^-8 < 0.1%; allow Monte-Carlo slack.
  EXPECT_GT(report.masked_fraction(), 0.95);
  EXPECT_LT(report.repairs_triggered, report.outages / 10);
}

TEST(TransientSim, TrafficScalesWithMultiplier) {
  // Same failure trace (same seed/params): RS pays ~10x the pentagon.
  TransientSimConfig config;
  config.repair_timeout_hours = 0.0;  // repair everything, deterministic-ish
  config.horizon_hours = 24 * 60;
  config.seed = 5;
  const auto pentagon = ec::make_code("pentagon").value();
  const auto rs = ec::make_code("rs-10-4").value();
  const auto pent_report = simulate_transient_failures(*pentagon, config);
  const auto rs_report = simulate_transient_failures(*rs, config);
  ASSERT_GT(pent_report.repairs_triggered, 0u);
  const double per_repair_pent =
      pent_report.repair_network_bytes / pent_report.repairs_triggered;
  const double per_repair_rs =
      rs_report.repair_network_bytes / rs_report.repairs_triggered;
  EXPECT_NEAR(per_repair_rs / per_repair_pent, 10.0, 1e-9);
}

TEST(TransientSim, OutageRateRoughlyMatchesConfiguration) {
  TransientSimConfig config;
  config.num_nodes = 50;
  config.horizon_hours = 24 * 365;
  config.outage_rate_per_hour = 1.0 / (24 * 30);
  config.seed = 6;
  const auto code = ec::make_code("2-rep").value();
  const auto report = simulate_transient_failures(*code, config);
  // Expected ~ 50 nodes * 12.2 outages/year ~ 608; allow 15% slack (the
  // arrival process pauses while a node is already down).
  EXPECT_GT(report.outages, 500u);
  EXPECT_LT(report.outages, 700u);
}

TEST(TransientSim, DownHoursTrackMeanOutage) {
  TransientSimConfig config;
  config.seed = 7;
  config.mean_outage_hours = 0.5;
  const auto code = ec::make_code("2-rep").value();
  const auto report = simulate_transient_failures(*code, config);
  ASSERT_GT(report.outages, 0u);
  EXPECT_NEAR(report.node_down_hours / report.outages, 0.5, 0.1);
}

}  // namespace
}  // namespace dblrep::cluster
