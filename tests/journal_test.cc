// Property tests for the NameNode write-ahead journal codec: field-exact
// round trips for every record kind, clean parses at every record
// boundary, and -- the part recovery leans on -- torn, CRC-corrupted, and
// implausibly-framed tails detected and discarded rather than replayed.
// Snapshot (ShardImage) codec coverage rides along: snapshots are written
// atomically, so any damage there is CORRUPTION, not a shorter log.
#include <gtest/gtest.h>

#include <cstring>

#include "hdfs/journal.h"

namespace dblrep::hdfs {
namespace {

/// One record per kind with every field populated: the layout is uniform,
/// so round-trip equality over these is the whole codec's field matrix.
std::vector<JournalRecord> sample_records() {
  FileState file;
  file.code_spec = "heptagon-local";
  file.block_size = 4096;
  file.length = 123457;
  file.stripes = {7, 9, 11};

  std::vector<JournalRecord> records;
  std::uint64_t seq = 100;
  for (const auto kind :
       {JournalRecordKind::kCreate, JournalRecordKind::kAllocate,
        JournalRecordKind::kStore, JournalRecordKind::kSeal,
        JournalRecordKind::kCommit, JournalRecordKind::kAbort,
        JournalRecordKind::kDelete, JournalRecordKind::kRename,
        JournalRecordKind::kRenameOut, JournalRecordKind::kRenameIn,
        JournalRecordKind::kRenameAck, JournalRecordKind::kGcStripes}) {
    JournalRecord r;
    r.kind = kind;
    r.seq = ++seq;
    r.path = "/a/with \xc3\xa9 bytes/" + std::string(1, 'x');
    r.path2 = "/b/dest";
    r.code_spec = "pentagon";
    r.block_size = 1 << 20;
    r.length = 0xdeadbeefcafeULL;
    r.stripe = 42;
    r.stripes = {1, 2, 3, 0xffffffffffULL};
    r.groups = {{0, 1, 2}, {3, 4, 5, -1}};
    r.file = file;
    records.push_back(std::move(r));
  }
  return records;
}

Journal journal_of(const std::vector<JournalRecord>& records) {
  Journal journal;
  for (const auto& r : records) journal.append(r);
  return journal;
}

TEST(JournalCodec, EveryKindRoundTripsFieldExact) {
  const auto records = sample_records();
  const Journal journal = journal_of(records);
  EXPECT_EQ(journal.num_records(), records.size());
  EXPECT_EQ(journal.last_seq(), records.back().seq);

  const ParsedJournal parsed = parse_journal(journal.bytes());
  EXPECT_TRUE(parsed.clean()) << parsed.tail_error;
  EXPECT_EQ(parsed.clean_bytes, journal.bytes().size());
  EXPECT_EQ(parsed.discarded_bytes, 0u);
  ASSERT_EQ(parsed.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed.records[i], records[i]) << "record " << i;
  }
}

TEST(JournalCodec, EmptyJournalParsesClean) {
  const ParsedJournal parsed = parse_journal({});
  EXPECT_TRUE(parsed.clean());
  EXPECT_TRUE(parsed.records.empty());
  EXPECT_EQ(parsed.clean_bytes, 0u);
}

TEST(JournalCodec, EveryRecordBoundaryParsesClean) {
  const auto records = sample_records();
  const Journal journal = journal_of(records);
  const ByteSpan bytes = journal.bytes();
  ASSERT_EQ(journal.boundaries().size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const std::size_t end = journal.boundaries()[i];
    const ParsedJournal parsed =
        parse_journal(ByteSpan(bytes.data(), end));
    EXPECT_TRUE(parsed.clean()) << "boundary " << i << ": "
                                << parsed.tail_error;
    ASSERT_EQ(parsed.records.size(), i + 1);
    EXPECT_EQ(parsed.records[i], records[i]);
  }
}

TEST(JournalCodec, TornTailIsDiscardedAtEveryMidRecordCut) {
  const auto records = sample_records();
  const Journal journal = journal_of(records);
  const ByteSpan bytes = journal.bytes();
  std::size_t start = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const std::size_t end = journal.boundaries()[i];
    for (std::size_t cut = start + 1; cut < end; ++cut) {
      const ParsedJournal parsed =
          parse_journal(ByteSpan(bytes.data(), cut));
      EXPECT_FALSE(parsed.clean()) << "cut " << cut;
      EXPECT_EQ(parsed.records.size(), i) << "cut " << cut;
      EXPECT_EQ(parsed.clean_bytes, start) << "cut " << cut;
      EXPECT_EQ(parsed.discarded_bytes, cut - start) << "cut " << cut;
    }
    start = end;
  }
}

TEST(JournalCodec, CorruptedTailCrcIsDetectedAndDiscarded) {
  const auto records = sample_records();
  const Journal journal = journal_of(records);
  Buffer bytes(journal.bytes().begin(), journal.bytes().end());
  // Flip one payload byte of the final record (past its 8-byte header).
  const std::size_t last_start = journal.boundaries()[records.size() - 2];
  bytes[last_start + 8] ^= 0x01;

  const ParsedJournal parsed = parse_journal(bytes);
  EXPECT_FALSE(parsed.clean());
  EXPECT_NE(parsed.tail_error.find("CRC"), std::string::npos)
      << parsed.tail_error;
  EXPECT_EQ(parsed.records.size(), records.size() - 1);
  EXPECT_EQ(parsed.clean_bytes, last_start);
}

TEST(JournalCodec, CorruptionMidJournalStopsReplayThere) {
  // Everything after a corrupt record is unordered debris: replay must
  // stop at the first bad frame even though later frames are intact.
  const auto records = sample_records();
  const Journal journal = journal_of(records);
  Buffer bytes(journal.bytes().begin(), journal.bytes().end());
  const std::size_t mid = records.size() / 2;
  const std::size_t mid_start = journal.boundaries()[mid - 1];
  bytes[mid_start + 8] ^= 0xff;

  const ParsedJournal parsed = parse_journal(bytes);
  EXPECT_FALSE(parsed.clean());
  EXPECT_EQ(parsed.records.size(), mid);
  EXPECT_EQ(parsed.clean_bytes, mid_start);
  EXPECT_EQ(parsed.discarded_bytes, bytes.size() - mid_start);
}

TEST(JournalCodec, ImplausibleFrameLengthIsRejected) {
  const auto records = sample_records();
  const Journal journal = journal_of(records);
  Buffer bytes(journal.bytes().begin(), journal.bytes().end());
  // Stamp an absurd length into the final record's frame header: a torn
  // write through the length field must not make the parser try to read
  // gigabytes.
  const std::size_t last_start = journal.boundaries()[records.size() - 2];
  const std::uint32_t absurd = 0x7fffffff;
  std::memcpy(bytes.data() + last_start, &absurd, sizeof(absurd));

  const ParsedJournal parsed = parse_journal(bytes);
  EXPECT_FALSE(parsed.clean());
  EXPECT_NE(parsed.tail_error.find("implausible"), std::string::npos)
      << parsed.tail_error;
  EXPECT_EQ(parsed.records.size(), records.size() - 1);
}

TEST(Journal, DropLastRecordForgetsExactlyOneAppend) {
  const auto records = sample_records();
  Journal journal = journal_of(records);
  ASSERT_TRUE(journal.drop_last_record().is_ok());
  const ParsedJournal parsed = parse_journal(journal.bytes());
  EXPECT_TRUE(parsed.clean());
  ASSERT_EQ(parsed.records.size(), records.size() - 1);
  EXPECT_EQ(parsed.records.back(), records[records.size() - 2]);

  Journal empty;
  EXPECT_FALSE(empty.drop_last_record().is_ok());
}

TEST(Journal, ClearKeepsSeqWatermark) {
  const auto records = sample_records();
  Journal journal = journal_of(records);
  const std::uint64_t seq = journal.last_seq();
  journal.clear();
  EXPECT_EQ(journal.num_records(), 0u);
  EXPECT_EQ(journal.bytes().size(), 0u);
  // A snapshot taken after clear() must still record how far history got.
  EXPECT_EQ(journal.last_seq(), seq);
}

// ------------------------------------------------------------- snapshots

ShardImage sample_image() {
  ShardImage image;
  image.last_seq = 777;
  image.next_stripe_id = 1234;
  FileState published;
  published.code_spec = "raidm-9";
  published.block_size = 512;
  published.length = 9999;
  published.stripes = {5, 6};
  FileState open;
  open.code_spec = "3-rep";
  open.block_size = 64;
  image.files = {{"/a", published}, {"/b", published}};
  image.pending = {{"/tmp/open", open}};
  ShardImage::Stripe stripe;
  stripe.id = 5;
  stripe.code_spec = "raidm-9";
  stripe.sealed = true;
  stripe.group = {0, 3, 7, 9, 12, 14, 15, 18, 20};
  image.stripes = {stripe};
  return image;
}

TEST(SnapshotCodec, RoundTripsFieldExact) {
  const ShardImage image = sample_image();
  const Buffer bytes = encode_snapshot(image);
  const auto decoded = decode_snapshot(bytes);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(*decoded, image);
}

TEST(SnapshotCodec, EmptyInputIsTheNeverSnapshottedState) {
  const auto decoded = decode_snapshot({});
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(*decoded, ShardImage{});
}

TEST(SnapshotCodec, AnyDamageIsCorruption) {
  const ShardImage image = sample_image();
  const Buffer bytes = encode_snapshot(image);

  // Unlike the journal, a snapshot is written atomically: truncation and
  // bit flips alike must surface as CORRUPTION, never as a shorter image.
  Buffer truncated(bytes.begin(), bytes.end() - 3);
  EXPECT_EQ(decode_snapshot(truncated).status().code(),
            StatusCode::kCorruption);

  for (const std::size_t at : {std::size_t{1}, bytes.size() / 2,
                               bytes.size() - 1}) {
    Buffer flipped = bytes;
    flipped[at] ^= 0x40;
    EXPECT_EQ(decode_snapshot(flipped).status().code(),
              StatusCode::kCorruption)
        << "flip at " << at;
  }
}

}  // namespace
}  // namespace dblrep::hdfs
