// Tests for the execution subsystem: thread pool, parallel_for semantics
// (correctness, error propagation, nesting, zero-worker serial mode),
// runtime checkout, and the striped namespace mutex.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "ec/registry.h"
#include "exec/future.h"
#include "exec/runtime_pool.h"
#include "exec/striped_mutex.h"
#include "exec/thread_pool.h"

namespace dblrep::exec {
namespace {

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, AsyncReturnsFutureResults) {
  ThreadPool pool(3);
  auto a = pool.async([] { return 7; });
  auto b = pool.async([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 7);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  std::thread::id submitter = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.submit([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, submitter);  // submit() executed it synchronously
}

TEST(ThreadPool, TasksSubmittedFromTasksComplete) {
  // Recursive submission exercises the worker-local push + steal path.
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::promise<void> all_done;
  constexpr int kFanout = 25;
  for (int i = 0; i < kFanout; ++i) {
    pool.submit([&] {
      pool.submit([&] {
        if (done.fetch_add(1) + 1 == kFanout) all_done.set_value();
      });
    });
  }
  all_done.get_future().wait();
  EXPECT_EQ(done.load(), kFanout);
}

TEST(ThreadPool, ParseWorkerCount) {
  EXPECT_EQ(ThreadPool::parse_worker_count("8"), 8u);
  EXPECT_EQ(ThreadPool::parse_worker_count("0"), 0u);
  EXPECT_EQ(ThreadPool::parse_worker_count(nullptr), std::nullopt);
  EXPECT_EQ(ThreadPool::parse_worker_count(""), std::nullopt);
  EXPECT_EQ(ThreadPool::parse_worker_count("x"), std::nullopt);
  EXPECT_EQ(ThreadPool::parse_worker_count("4x"), std::nullopt);
  EXPECT_EQ(ThreadPool::parse_worker_count("-2"), std::nullopt);
}

// ---------------------------------------------------------- exec::Future

TEST(Future, PromiseDeliversOnce) {
  Promise<int> promise;
  Future<int> future = promise.future();
  EXPECT_TRUE(future.valid());
  EXPECT_FALSE(future.ready());
  promise.set_value(42);
  EXPECT_TRUE(future.ready());
  EXPECT_EQ(future.get(), 42);
  EXPECT_FALSE(future.valid());  // one-shot consume
}

TEST(Future, SpawnResolvesOnWorkers) {
  ThreadPool pool(3);
  std::vector<Future<std::size_t>> futures;
  for (std::size_t i = 0; i < 64; ++i) {
    futures.push_back(spawn(pool, [i] { return i * i; }));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(Future, SpawnOnInlinePoolIsReadyBeforeReturn) {
  ThreadPool pool(0);
  auto future = spawn(pool, [] { return std::string("serial"); });
  // Zero workers: the task ran inside spawn(), so the future never blocks
  // -- that is the serial reference execution of the async client API.
  EXPECT_TRUE(future.ready());
  EXPECT_EQ(future.get(), "serial");
}

TEST(Future, WaitBlocksUntilDelivery) {
  Promise<int> promise;
  Future<int> future = promise.future();
  std::thread producer([&promise] { promise.set_value(9); });
  future.wait();
  EXPECT_TRUE(future.ready());
  EXPECT_EQ(future.get(), 9);
  producer.join();
}

// ---------------------------------------------------------- parallel_for

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (std::size_t workers : {0u, 1u, 4u}) {
    ThreadPool pool(workers);
    constexpr std::size_t kN = 500;
    std::vector<std::atomic<int>> hits(kN);
    const Status status = parallel_for(pool, kN, [&](std::size_t i) {
      hits[i].fetch_add(1);
      return Status::ok();
    });
    EXPECT_TRUE(status.is_ok());
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " workers " << workers;
    }
  }
}

TEST(ParallelFor, EmptyRangeIsOk) {
  ThreadPool pool(2);
  EXPECT_TRUE(parallel_for(pool, 0, [](std::size_t) {
                return internal_error("never called");
              }).is_ok());
}

TEST(ParallelFor, PropagatesFirstErrorAndSkipsRemainder) {
  ThreadPool pool(4);
  std::atomic<std::size_t> executed{0};
  const Status status = parallel_for(pool, 10000, [&](std::size_t i) {
    executed.fetch_add(1);
    if (i == 3) return invalid_argument_error("boom");
    return Status::ok();
  });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "boom");
  // Iterations claimed after the failure are skipped, so far fewer than
  // the full range ran (in-flight ones may still have completed).
  EXPECT_LT(executed.load(), 10000u);
}

TEST(ParallelFor, SerialModeRunsInOrderAndStopsAtError) {
  ThreadPool pool(0);
  std::vector<std::size_t> order;
  const Status status = parallel_for(pool, 10, [&](std::size_t i) {
    order.push_back(i);
    if (i == 4) return internal_error("stop");
    return Status::ok();
  });
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForAll, RunsEveryIterationDespiteFailures) {
  // The deterministic-fault variant: no early exit, so the set of executed
  // iterations never depends on pool scheduling.
  for (const std::size_t workers : {0u, 4u}) {
    ThreadPool pool(workers);
    std::atomic<std::size_t> executed{0};
    const Status status = parallel_for_all(pool, 100, [&](std::size_t i) {
      executed.fetch_add(1);
      if (i % 7 == 3) return unavailable_error("down " + std::to_string(i));
      return Status::ok();
    });
    EXPECT_EQ(executed.load(), 100u) << workers << " workers";
    // Lowest-index error, not first-completed: always iteration 3.
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
    EXPECT_EQ(status.message(), "down 3") << workers << " workers";
  }
}

TEST(ParallelForAll, AllOkReturnsOk) {
  ThreadPool pool(2);
  std::atomic<std::size_t> executed{0};
  EXPECT_TRUE(parallel_for_all(pool, 50, [&](std::size_t) {
                executed.fetch_add(1);
                return Status::ok();
              }).is_ok());
  EXPECT_EQ(executed.load(), 50u);
}

TEST(ParallelFor, NestedCallsDoNotDeadlock) {
  // Every outer iteration runs an inner parallel_for on the same small
  // pool; caller participation guarantees progress even with all workers
  // blocked in outer iterations.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  const Status status = parallel_for(pool, 8, [&](std::size_t) {
    return parallel_for(pool, 8, [&](std::size_t) {
      total.fetch_add(1);
      return Status::ok();
    });
  });
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, ConcurrentCallersFromManyThreads) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      const Status status = parallel_for(pool, 50, [&](std::size_t) {
        total.fetch_add(1);
        return Status::ok();
      });
      EXPECT_TRUE(status.is_ok());
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 200);
}

// ----------------------------------------------------------- RuntimePool

TEST(RuntimePool, ReusesReturnedRuntime) {
  const auto code = ec::make_code("rs-10-4").value();
  RuntimePool pool(*code);
  const RuntimePool::Runtime* first;
  {
    auto lease = pool.acquire();
    first = &*lease;
  }
  auto lease = pool.acquire();
  EXPECT_EQ(&*lease, first);  // checked back in, checked back out
  EXPECT_EQ(pool.size(), 1u);
}

TEST(RuntimePool, ConcurrentLeasesAreDistinct) {
  const auto code = ec::make_code("pentagon").value();
  RuntimePool pool(*code);
  auto a = pool.acquire();
  auto b = pool.acquire();
  EXPECT_NE(&*a, &*b);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(RuntimePool, ParallelCheckoutNeverShares) {
  const auto code = ec::make_code("heptagon").value();
  RuntimePool rpool(*code);
  ThreadPool pool(4);
  std::mutex mu;
  std::set<const RuntimePool::Runtime*> in_use;
  const Status status = parallel_for(pool, 200, [&](std::size_t) -> Status {
    auto lease = rpool.acquire();
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!in_use.insert(&*lease).second) {
        return internal_error("runtime leased twice concurrently");
      }
    }
    // Exercise the leased codec so a shared arena would corrupt.
    const Buffer data = random_buffer(7 * 64, 3);
    (void)lease->codec.encode_stripe(data, 64);
    std::lock_guard<std::mutex> lock(mu);
    in_use.erase(&*lease);
    return Status::ok();
  });
  EXPECT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_LE(rpool.size(), 5u);  // at most one per participant
}

// ----------------------------------------------------- StripedSharedMutex

TEST(StripedSharedMutex, SameKeySameStripe) {
  StripedSharedMutex mu;
  EXPECT_EQ(&mu.of("/a/b"), &mu.of("/a/b"));
}

TEST(StripedSharedMutex, ExclusiveExcludesShared) {
  StripedSharedMutex mu;
  std::unique_lock<std::shared_mutex> writer(mu.of("/x"));
  std::shared_mutex& same = mu.of("/x");
  EXPECT_FALSE(same.try_lock_shared());
  writer.unlock();
  EXPECT_TRUE(same.try_lock_shared());
  same.unlock_shared();
}

TEST(StripedSharedMutex, PairLockHandlesCollidingKeys) {
  StripedSharedMutex mu;
  // Locking (k, k) must not self-deadlock even though both map to the
  // same stripe; scope exit must fully release.
  { StripedSharedMutex::PairLock lock(mu, "/same", "/same"); }
  EXPECT_TRUE(mu.of("/same").try_lock());
  mu.of("/same").unlock();
}

}  // namespace
}  // namespace dblrep::exec
