// Cross-kernel chaos determinism: one chaos seed replayed under each
// available GF kernel backend (scalar / ssse3 / avx2 / avx512 / gfni) must
// produce the identical event trace, identical datanode contents, and
// identical traffic totals -- and so must the same kernel with streaming
// stores disabled, since the non-temporal path may only change how parity
// bytes reach memory, never which bytes. The kernels are bit-identical by
// contract at the slice level (tests/gf_kernel_test.cc); this closes the
// loop end to end -- thousands of encode/decode/repair calls deep -- so a
// failing chaos seed found on a gfni machine reproduces exactly on a
// scalar-only one.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/harness.h"
#include "gf/kernel.h"

namespace dblrep::chaos {
namespace {

/// Restores the kernel (and streaming-store setting) active at
/// construction when the test exits.
struct KernelGuard {
  std::string original = gf::active_kernel().name;
  bool nt = gf::non_temporal_enabled();
  ~KernelGuard() {
    gf::set_active_kernel(original);
    gf::set_non_temporal(nt);
  }
};

ChaosConfig scenario(const std::string& code_spec) {
  ChaosConfig config;
  config.code_spec = code_spec;
  config.horizon_s = 10.0;
  config.preload_files = 2;
  config.stripes_per_file = 1;
  return config;
}

TEST(ChaosCrossKernel, SameSeedSameTraceUnderEveryKernel) {
  KernelGuard guard;
  // rs-10-4 exercises general GF coefficients; heptagon-local the
  // XOR/partial-parity paths.
  for (const char* spec : {"rs-10-4", "heptagon-local"}) {
    std::vector<ChaosReport> reports;
    std::vector<std::string> names;
    for (const gf::GfKernel* kernel : gf::supported_kernels()) {
      ASSERT_TRUE(gf::set_active_kernel(kernel->name));
      // Each kernel runs with streaming stores on and off: the NT fold
      // path has its own head/interior/tail structure, so both routes
      // must land in the same trace.
      for (const bool nt : {true, false}) {
        gf::set_non_temporal(nt);
        reports.push_back(ChaosHarness(scenario(spec)).run_seed(17));
        names.push_back(std::string(kernel->name) +
                        (nt ? "+nt" : "+no-nt"));
      }
    }
    ASSERT_FALSE(reports.empty());
    EXPECT_TRUE(reports.front().ok())
        << spec << " under " << names.front() << ":\n"
        << reports.front().trace_to_string();
    for (std::size_t i = 1; i < reports.size(); ++i) {
      EXPECT_EQ(reports[i].trace, reports.front().trace)
          << spec << ": kernel " << names[i] << " diverged from "
          << names.front();
      EXPECT_EQ(reports[i].final_storage_fingerprint,
                reports.front().final_storage_fingerprint)
          << spec << ": datanode contents differ under " << names[i];
      EXPECT_EQ(reports[i].traffic_total_bytes,
                reports.front().traffic_total_bytes)
          << spec << ": traffic totals differ under " << names[i];
      EXPECT_EQ(reports[i].final_fingerprint,
                reports.front().final_fingerprint)
          << spec << ": cluster state differs under " << names[i];
    }
  }
}

}  // namespace
}  // namespace dblrep::chaos
