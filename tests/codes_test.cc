// Property tests on every CodeScheme: encode/decode round trips under all
// tolerated erasure patterns, fault-tolerance boundaries, Table-1 static
// parameters, and codeword verification.
#include <gtest/gtest.h>

#include <cctype>
#include <functional>
#include <set>

#include "common/rng.h"
#include "ec/code.h"
#include "ec/local_polygon.h"
#include "ec/polygon.h"
#include "ec/raid_mirror.h"
#include "ec/registry.h"
#include "ec/replication.h"
#include "ec/rs.h"

namespace dblrep::ec {
namespace {

constexpr std::size_t kBlockSize = 256;

std::vector<Buffer> random_data(const CodeScheme& code, std::uint64_t seed) {
  std::vector<Buffer> data;
  for (std::size_t i = 0; i < code.data_blocks(); ++i) {
    data.push_back(random_buffer(kBlockSize, seed * 1000 + i));
  }
  return data;
}

SlotStore full_store(const CodeScheme& code, const std::vector<Buffer>& data) {
  const auto slots = code.encode(data);
  SlotStore store;
  for (std::size_t s = 0; s < slots.size(); ++s) store[s] = slots[s];
  return store;
}

SlotStore store_without_nodes(const CodeScheme& code,
                              const std::vector<Buffer>& data,
                              const std::set<NodeIndex>& failed) {
  SlotStore store = full_store(code, data);
  for (NodeIndex node : failed) {
    for (auto slot : code.layout().slots_on_node(node)) store.erase(slot);
  }
  return store;
}

/// All size-t subsets of [0, n).
std::vector<std::set<NodeIndex>> node_subsets(std::size_t n, std::size_t t) {
  std::vector<std::set<NodeIndex>> out;
  std::vector<NodeIndex> pick(t);
  // Iterative combination enumeration.
  std::function<void(std::size_t, NodeIndex)> rec = [&](std::size_t depth,
                                                        NodeIndex start) {
    if (depth == t) {
      out.emplace_back(pick.begin(), pick.end());
      return;
    }
    for (NodeIndex v = start; v < static_cast<NodeIndex>(n); ++v) {
      pick[depth] = v;
      rec(depth + 1, v + 1);
    }
  };
  rec(0, 0);
  return out;
}

// ------------------------------------------------- parameterized suite

struct CodeCase {
  std::string spec;
  // Expected Table-1 style static parameters.
  double overhead;
  std::size_t code_length;
  int tolerance;
};

class AllCodesTest : public ::testing::TestWithParam<CodeCase> {
 protected:
  void SetUp() override {
    auto made = make_code(GetParam().spec);
    ASSERT_TRUE(made.is_ok()) << made.status().to_string();
    code_ = std::move(made).value();
  }
  std::unique_ptr<CodeScheme> code_;
};

TEST_P(AllCodesTest, StaticParametersMatchPaperTable1) {
  const auto& p = code_->params();
  EXPECT_NEAR(p.storage_overhead(), GetParam().overhead, 0.005);
  EXPECT_EQ(p.num_nodes, GetParam().code_length);
  EXPECT_EQ(p.fault_tolerance, GetParam().tolerance);
}

TEST_P(AllCodesTest, EncodeProducesReplicaConsistentSlots) {
  const auto data = random_data(*code_, 1);
  const auto slots = code_->encode(data);
  ASSERT_EQ(slots.size(), code_->layout().num_slots());
  for (std::size_t sym = 0; sym < code_->num_symbols(); ++sym) {
    const auto& replicas = code_->layout().slots_of_symbol(sym);
    for (std::size_t i = 1; i < replicas.size(); ++i) {
      EXPECT_EQ(slots[replicas[i]], slots[replicas[0]]);
    }
  }
  // Systematic: data symbols hold data verbatim (unit u is sub-chunk
  // u % alpha of block u / alpha; alpha == 1 reduces to whole blocks).
  const std::size_t alpha = code_->sub_chunks();
  const std::size_t unit_size = kBlockSize / alpha;
  for (std::size_t u = 0; u < code_->data_units(); ++u) {
    const auto& block = data[u / alpha];
    const Buffer expected(block.begin() + (u % alpha) * unit_size,
                          block.begin() + (u % alpha + 1) * unit_size);
    EXPECT_EQ(slots[code_->layout().slots_of_symbol(u)[0]], expected);
  }
}

TEST_P(AllCodesTest, DecodeFromIntactStripe) {
  const auto data = random_data(*code_, 2);
  auto store = full_store(*code_, data);
  const auto decoded = code_->decode(store, kBlockSize);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(*decoded, data);
}

TEST_P(AllCodesTest, DecodeUnderEveryToleratedNodeFailurePattern) {
  const auto data = random_data(*code_, 3);
  const auto t = static_cast<std::size_t>(code_->params().fault_tolerance);
  for (std::size_t size = 1; size <= t; ++size) {
    for (const auto& failed : node_subsets(code_->num_nodes(), size)) {
      auto store = store_without_nodes(*code_, data, failed);
      EXPECT_TRUE(code_->is_recoverable(failed));
      const auto decoded = code_->decode(store, kBlockSize);
      ASSERT_TRUE(decoded.is_ok())
          << GetParam().spec << " failed pattern size " << size;
      EXPECT_EQ(*decoded, data);
    }
  }
}

TEST_P(AllCodesTest, SomePatternBeyondToleranceIsFatal) {
  // fault_tolerance is the *maximum* t with all patterns recoverable, so at
  // least one (t+1)-pattern must be fatal (unless it exceeds node count).
  const auto t = static_cast<std::size_t>(code_->params().fault_tolerance);
  if (t + 1 > code_->num_nodes()) GTEST_SKIP();
  bool found_fatal = false;
  for (const auto& failed : node_subsets(code_->num_nodes(), t + 1)) {
    if (!code_->is_recoverable(failed)) {
      found_fatal = true;
      // decode must refuse, not hand back wrong bytes.
      const auto data = random_data(*code_, 4);
      auto store = store_without_nodes(*code_, data, failed);
      const auto decoded = code_->decode(store, kBlockSize);
      EXPECT_FALSE(decoded.is_ok());
      EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
      break;
    }
  }
  EXPECT_TRUE(found_fatal) << "tolerance understated for " << GetParam().spec;
}

TEST_P(AllCodesTest, VerifyCodewordAcceptsConsistentStripe) {
  const auto data = random_data(*code_, 5);
  auto store = full_store(*code_, data);
  EXPECT_TRUE(code_->verify_codeword(store, kBlockSize).is_ok());
}

TEST_P(AllCodesTest, VerifyCodewordFlagsCorruptedSlot) {
  const auto data = random_data(*code_, 6);
  auto store = full_store(*code_, data);
  store[0][10] ^= 0xff;
  const auto status = code_->verify_codeword(store, kBlockSize);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST_P(AllCodesTest, NodeRepairPlanRestoresEveryLostSlotExactly) {
  const auto data = random_data(*code_, 7);
  const auto pristine = code_->encode(data);
  PlanExecutor executor(code_->layout());
  for (NodeIndex failed = 0;
       failed < static_cast<NodeIndex>(code_->num_nodes()); ++failed) {
    auto store = store_without_nodes(*code_, data, {failed});
    const auto plan = code_->plan_node_repair(failed);
    ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
    const auto run = executor.execute(*plan, store);
    ASSERT_TRUE(run.is_ok()) << run.status().to_string();
    for (auto slot : code_->layout().slots_on_node(failed)) {
      ASSERT_TRUE(store.contains(slot));
      EXPECT_EQ(store.at(slot), pristine[slot]) << "slot " << slot;
    }
  }
}

TEST_P(AllCodesTest, MultiNodeRepairUnderEveryToleratedPattern) {
  const auto data = random_data(*code_, 8);
  const auto pristine = code_->encode(data);
  PlanExecutor executor(code_->layout());
  const auto t = static_cast<std::size_t>(code_->params().fault_tolerance);
  for (std::size_t size = 2; size <= t; ++size) {
    for (const auto& failed : node_subsets(code_->num_nodes(), size)) {
      auto store = store_without_nodes(*code_, data, failed);
      const auto plan = code_->plan_multi_node_repair(failed);
      ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
      const auto run = executor.execute(*plan, store);
      ASSERT_TRUE(run.is_ok()) << run.status().to_string();
      for (NodeIndex node : failed) {
        for (auto slot : code_->layout().slots_on_node(node)) {
          EXPECT_EQ(store.at(slot), pristine[slot]);
        }
      }
    }
  }
}

TEST_P(AllCodesTest, DegradedReadDeliversEverySymbolUnderSingleFailures) {
  const auto data = random_data(*code_, 9);
  const auto symbols = code_->encode_symbols(data);
  PlanExecutor executor(code_->layout());
  for (NodeIndex failed = 0;
       failed < static_cast<NodeIndex>(code_->num_nodes()); ++failed) {
    for (auto slot : code_->layout().slots_on_node(failed)) {
      const std::size_t sym = code_->layout().symbol_of_slot(slot);
      auto store = store_without_nodes(*code_, data, {failed});
      const auto plan = code_->plan_degraded_read(sym, {failed});
      ASSERT_TRUE(plan.is_ok());
      auto run = executor.execute(*plan, store);
      ASSERT_TRUE(run.is_ok()) << run.status().to_string();
      ASSERT_EQ(run->size(), 1u);
      EXPECT_EQ((*run)[0], symbols[sym]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperCodes, AllCodesTest,
    ::testing::Values(
        CodeCase{"2-rep", 2.0, 2, 1},
        CodeCase{"3-rep", 3.0, 3, 2},
        CodeCase{"pentagon", 20.0 / 9.0, 5, 2},
        CodeCase{"heptagon", 42.0 / 20.0, 7, 2},
        CodeCase{"heptagon-local", 86.0 / 40.0, 15, 3},
        CodeCase{"raidm-9", 20.0 / 9.0, 20, 3},
        CodeCase{"raidm-11", 24.0 / 11.0, 24, 3},
        CodeCase{"rs-10-4", 14.0 / 10.0, 14, 4},
        CodeCase{"clay-6-4", 1.5, 6, 2},
        CodeCase{"pgy-10-4", 14.0 / 10.0, 14, 4},
        CodeCase{"polygon-4", 12.0 / 5.0, 4, 2},
        CodeCase{"polygon-6", 30.0 / 14.0, 6, 2},
        CodeCase{"polygon-5-local", 42.0 / 18.0, 11, 3}),
    [](const ::testing::TestParamInfo<CodeCase>& info) {
      std::string name = info.param.spec;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

// ------------------------------------------------- code-specific facts

TEST(Pentagon, AnyThreeNodesSufficeToDecode) {
  // The MBR property quoted in Section 2.1: contents of any 3 of the 5
  // nodes recover all 9 data blocks.
  PolygonCode pentagon(5);
  const auto data = random_data(pentagon, 10);
  for (const auto& alive : node_subsets(5, 3)) {
    std::set<NodeIndex> failed;
    for (NodeIndex n = 0; n < 5; ++n) {
      if (!alive.contains(n)) failed.insert(n);
    }
    auto store = store_without_nodes(pentagon, data, failed);
    const auto decoded = pentagon.decode(store, kBlockSize);
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(*decoded, data);
  }
}

TEST(Pentagon, AnyThreeNodeFailureIsFatal) {
  PolygonCode pentagon(5);
  for (const auto& failed : node_subsets(5, 3)) {
    EXPECT_FALSE(pentagon.is_recoverable(failed));
  }
}

TEST(Heptagon, AnyTwoNodeFailureRecoverableAnyThreeFatal) {
  PolygonCode heptagon(7);
  for (const auto& failed : node_subsets(7, 2)) {
    EXPECT_TRUE(heptagon.is_recoverable(failed));
  }
  for (const auto& failed : node_subsets(7, 3)) {
    EXPECT_FALSE(heptagon.is_recoverable(failed));
  }
}

TEST(HeptagonLocal, ExactlyTheExpectedFourNodePatternsAreFatal) {
  // 4-node patterns: fatal iff (a) 4 nodes in one heptagon, or (b) 3 nodes
  // in one heptagon plus the global node. Everything else survives.
  LocalPolygonCode code(7);
  for (const auto& failed : node_subsets(15, 4)) {
    int in_first = 0, in_second = 0;
    bool global = false;
    for (NodeIndex n : failed) {
      if (n < 7) ++in_first;
      else if (n < 14) ++in_second;
      else global = true;
    }
    const bool expect_fatal =
        in_first == 4 || in_second == 4 ||
        ((in_first == 3 || in_second == 3) && global);
    EXPECT_EQ(!code.is_recoverable(failed), expect_fatal)
        << "first=" << in_first << " second=" << in_second
        << " global=" << global;
  }
}

TEST(RaidMirror, FourNodePatternsFatalIffTwoCompletePairs) {
  RaidMirrorCode code(9);
  int fatal_count = 0;
  for (const auto& failed : node_subsets(20, 4)) {
    int complete_pairs = 0;
    for (std::size_t s = 0; s < 10; ++s) {
      const auto [a, b] = code.mirror_nodes(s);
      if (failed.contains(a) && failed.contains(b)) ++complete_pairs;
    }
    EXPECT_EQ(!code.is_recoverable(failed), complete_pairs >= 2);
    if (complete_pairs >= 2) ++fatal_count;
  }
  // C(10,2) = 45 ways to choose the two dead pairs.
  EXPECT_EQ(fatal_count, 45);
}

TEST(Replication, ToleranceBoundaries) {
  ReplicationCode two(2);
  EXPECT_TRUE(two.is_recoverable({0}));
  EXPECT_FALSE(two.is_recoverable({0, 1}));
  ReplicationCode three(3);
  EXPECT_TRUE(three.is_recoverable({0, 2}));
  EXPECT_FALSE(three.is_recoverable({0, 1, 2}));
}

TEST(Rs, MdsPropertyExhaustiveForSmallCode) {
  RsCode code(4, 2);
  for (const auto& failed : node_subsets(6, 2)) {
    EXPECT_TRUE(code.is_recoverable(failed));
  }
  for (const auto& failed : node_subsets(6, 3)) {
    EXPECT_FALSE(code.is_recoverable(failed));
  }
}

TEST(ChunkData, PadsAndSplits) {
  const Buffer input = random_buffer(100, 11);
  const auto blocks = chunk_data(input, 3, 40);
  ASSERT_EQ(blocks.size(), 3u);
  for (const auto& b : blocks) EXPECT_EQ(b.size(), 40u);
  // Content preserved, tail zero-padded.
  EXPECT_TRUE(std::equal(input.begin(), input.begin() + 40, blocks[0].begin()));
  EXPECT_TRUE(std::equal(input.begin() + 80, input.end(), blocks[2].begin()));
  EXPECT_EQ(blocks[2][20], 0);
  EXPECT_EQ(blocks[2][39], 0);
}

TEST(ChunkData, OversizeInputRejected) {
  EXPECT_THROW(chunk_data(Buffer(100), 2, 40), ContractViolation);
}

TEST(Registry, RejectsUnknownSpecs) {
  EXPECT_FALSE(make_code("nonagon").is_ok());
  EXPECT_FALSE(make_code("raidm-x").is_ok());
  EXPECT_FALSE(make_code("rs-10").is_ok());
  EXPECT_FALSE(make_code("-rep").is_ok());
  EXPECT_FALSE(make_code("polygon-2").is_ok());
}

TEST(Registry, PaperSpecListAllConstructible) {
  for (const auto& spec : paper_code_specs()) {
    EXPECT_TRUE(make_code(spec).is_ok()) << spec;
  }
}

TEST(Registry, NamesRoundTrip) {
  EXPECT_EQ(make_code("pentagon").value()->params().name, "pentagon");
  EXPECT_EQ(make_code("raidm-9").value()->params().name, "(10,9) RAID+m");
  EXPECT_EQ(make_code("rs-10-4").value()->params().name, "RS(10,4)");
  EXPECT_EQ(make_code("clay-6-4").value()->params().name, "Clay(6,4)");
  EXPECT_EQ(make_code("pgy-10-4").value()->params().name, "PgyRS(10,4)");
  EXPECT_EQ(make_code("heptagon-local").value()->params().name,
            "heptagon-local");
}

}  // namespace
}  // namespace dblrep::ec
