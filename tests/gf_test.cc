// Tests for GF(2^8) arithmetic: field axioms (exhaustively where cheap),
// known values for the 0x11d polynomial, and the slice kernels.
#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/check.h"
#include "gf/gf256.h"

namespace dblrep::gf {
namespace {

TEST(Gf256, AddIsXor) {
  EXPECT_EQ(add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(sub(0x57, 0x83), 0x57 ^ 0x83);
}

TEST(Gf256, MulKnownValues) {
  // Classic AES-adjacent sanity values for the 0x11d polynomial.
  EXPECT_EQ(mul(0, 0x53), 0);
  EXPECT_EQ(mul(1, 0x53), 0x53);
  EXPECT_EQ(mul(2, 0x80), 0x1d);   // overflow triggers reduction by 0x11d
  EXPECT_EQ(mul(2, 0x40), 0x80);   // no reduction
}

TEST(Gf256, GeneratorIsPrimitive) {
  // alpha = 2 must cycle through all 255 non-zero elements.
  std::set<Elem> seen;
  Elem x = 1;
  for (int i = 0; i < 255; ++i) {
    seen.insert(x);
    x = mul(x, kGenerator);
  }
  EXPECT_EQ(seen.size(), 255u);
  EXPECT_EQ(x, 1);  // alpha^255 == 1
}

TEST(Gf256, MulIsCommutativeExhaustive) {
  for (int a = 0; a < 256; ++a) {
    for (int b = a; b < 256; ++b) {
      ASSERT_EQ(mul(static_cast<Elem>(a), static_cast<Elem>(b)),
                mul(static_cast<Elem>(b), static_cast<Elem>(a)));
    }
  }
}

TEST(Gf256, MulAssociativeSpotChecks) {
  // Full triple loop is 16M cases; a pseudo-random slice is enough.
  for (int i = 1; i < 4000; ++i) {
    const Elem a = static_cast<Elem>((i * 17) & 0xff);
    const Elem b = static_cast<Elem>((i * 101 + 7) & 0xff);
    const Elem c = static_cast<Elem>((i * 251 + 13) & 0xff);
    ASSERT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
  }
}

TEST(Gf256, DistributesOverAddExhaustivePairsWithFixedC) {
  for (int c = 1; c < 256; c += 37) {
    for (int a = 0; a < 256; ++a) {
      for (int b = 0; b < 256; b += 5) {
        ASSERT_EQ(mul(static_cast<Elem>(a ^ b), static_cast<Elem>(c)),
                  add(mul(static_cast<Elem>(a), static_cast<Elem>(c)),
                      mul(static_cast<Elem>(b), static_cast<Elem>(c))));
      }
    }
  }
}

TEST(Gf256, InverseRoundTripsExhaustive) {
  for (int a = 1; a < 256; ++a) {
    const Elem e = static_cast<Elem>(a);
    EXPECT_EQ(mul(e, inv(e)), 1) << "a=" << a;
    EXPECT_EQ(div(1, e), inv(e));
  }
}

TEST(Gf256, DivisionRoundTripsExhaustiveSample) {
  for (int a = 0; a < 256; a += 3) {
    for (int b = 1; b < 256; b += 3) {
      const Elem q = div(static_cast<Elem>(a), static_cast<Elem>(b));
      ASSERT_EQ(mul(q, static_cast<Elem>(b)), static_cast<Elem>(a));
    }
  }
}

TEST(Gf256, DivByZeroIsContractViolation) {
  EXPECT_THROW(div(5, 0), ContractViolation);
  EXPECT_THROW(inv(0), ContractViolation);
  EXPECT_THROW(log_alpha(0), ContractViolation);
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (int a : {0, 1, 2, 3, 29, 255}) {
    Elem acc = 1;
    for (unsigned p = 0; p < 300; ++p) {
      ASSERT_EQ(pow(static_cast<Elem>(a), p), a == 0 && p > 0 ? 0 : acc)
          << "a=" << a << " p=" << p;
      acc = mul(acc, static_cast<Elem>(a));
    }
  }
}

TEST(Gf256, ExpLogRoundTrip) {
  for (unsigned i = 0; i < 255; ++i) {
    EXPECT_EQ(log_alpha(exp_alpha(i)), i);
  }
  EXPECT_EQ(exp_alpha(255), exp_alpha(0));  // wraps mod 255
}

TEST(GfSlices, AddmulZeroCoeffIsNoop) {
  Buffer dst = random_buffer(100, 1);
  const Buffer before = dst;
  addmul_slice(dst, random_buffer(100, 2), 0);
  EXPECT_EQ(dst, before);
}

TEST(GfSlices, AddmulOneCoeffIsXor) {
  Buffer dst = random_buffer(100, 1);
  const Buffer src = random_buffer(100, 2);
  Buffer expected = dst;
  xor_into(expected, src);
  addmul_slice(dst, src, 1);
  EXPECT_EQ(dst, expected);
}

TEST(GfSlices, AddmulMatchesScalarMul) {
  Buffer dst(64, 0);
  const Buffer src = random_buffer(64, 3);
  addmul_slice(dst, src, 0x1b);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(dst[i], mul(src[i], 0x1b));
  }
}

TEST(GfSlices, MulSliceAndScaleAgree) {
  const Buffer src = random_buffer(97, 4);
  Buffer a(src.size());
  mul_slice(a, src, 0x8e);
  Buffer b = src;
  scale_slice(b, 0x8e);
  EXPECT_EQ(a, b);
}

TEST(GfSlices, MulSliceZeroClearsAndOneCopies) {
  const Buffer src = random_buffer(16, 5);
  Buffer out(16, 0xff);
  mul_slice(out, src, 0);
  EXPECT_EQ(out, Buffer(16, 0));
  mul_slice(out, src, 1);
  EXPECT_EQ(out, src);
}

TEST(GfSlices, LinearityOfAddmul) {
  // addmul(c1) then addmul(c2) over the same src == addmul(c1 ^ c2 folded
  // via field add): (c1 + c2) * x == c1*x + c2*x.
  const Buffer src = random_buffer(50, 6);
  Buffer a(50, 0), b(50, 0);
  addmul_slice(a, src, 0x35);
  addmul_slice(a, src, 0x7a);
  addmul_slice(b, src, add(0x35, 0x7a));
  EXPECT_EQ(a, b);
}

TEST(GfSlices, SizeMismatchIsContractViolation) {
  Buffer dst(8);
  const Buffer src(9);
  EXPECT_THROW(addmul_slice(dst, src, 3), ContractViolation);
  EXPECT_THROW(mul_slice(dst, src, 3), ContractViolation);
}

}  // namespace
}  // namespace dblrep::gf
