// Tests for GF(2^8) matrices: construction, elimination, inversion, solve.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "gf/matrix.h"

namespace dblrep::gf {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.set(r, c, static_cast<Elem>(rng.next_below(256)));
    }
  }
  return m;
}

TEST(Matrix, IdentityProperties) {
  const Matrix id = Matrix::identity(5);
  EXPECT_EQ(id.rank(), 5u);
  EXPECT_EQ(id.mul(id), id);
  ASSERT_TRUE(id.inverse().is_ok());
  EXPECT_EQ(*id.inverse(), id);
}

TEST(Matrix, InitializerListAndAccessors) {
  const Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.at(0, 1), 2);
  EXPECT_EQ(m.at(1, 0), 3);
  EXPECT_THROW(m.at(2, 0), ContractViolation);
}

TEST(Matrix, RaggedInitializerRejected) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), ContractViolation);
}

TEST(Matrix, MulDimensionMismatchRejected) {
  const Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.mul(b), ContractViolation);
}

TEST(Matrix, VandermondeSquareIsInvertible) {
  // Distinct evaluation points -> invertible; the heptagon-local global
  // parity solvability rests on this.
  const Matrix v = Matrix::vandermonde({0, 1, 2, 3, 4}, 5);
  EXPECT_EQ(v.rank(), 5u);
  ASSERT_TRUE(v.inverse().is_ok());
  EXPECT_EQ(v.inverse()->mul(v), Matrix::identity(5));
}

TEST(Matrix, VandermondeRepeatedPointIsSingular) {
  const Matrix v = Matrix::vandermonde({1, 1, 2}, 3);
  EXPECT_LT(v.rank(), 3u);
  EXPECT_FALSE(v.inverse().is_ok());
}

TEST(Matrix, CauchyEverySquareSubmatrixInvertible3x3) {
  // The MDS property of Cauchy matrices: take a 3x4 Cauchy, every 3x3
  // column subset must be invertible.
  const Matrix c = Matrix::cauchy({1, 2, 3}, {4, 5, 6, 7});
  for (std::size_t skip = 0; skip < 4; ++skip) {
    Matrix sub(3, 3);
    for (std::size_t r = 0; r < 3; ++r) {
      std::size_t cc = 0;
      for (std::size_t col = 0; col < 4; ++col) {
        if (col == skip) continue;
        sub.set(r, cc++, c.at(r, col));
      }
    }
    EXPECT_EQ(sub.rank(), 3u) << "skipped column " << skip;
  }
}

TEST(Matrix, CauchyOverlappingPointsRejected) {
  EXPECT_THROW(Matrix::cauchy({1, 2}, {2, 3}), ContractViolation);
}

TEST(Matrix, InverseRoundTripRandomized) {
  Rng rng(42);
  int invertible_seen = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const Matrix m = random_matrix(6, 6, rng);
    const auto inverse = m.inverse();
    if (!inverse.is_ok()) continue;  // singular draw
    ++invertible_seen;
    EXPECT_EQ(m.mul(*inverse), Matrix::identity(6));
    EXPECT_EQ(inverse->mul(m), Matrix::identity(6));
  }
  // Random GF(256) 6x6 matrices are invertible with probability ~0.996.
  EXPECT_GT(invertible_seen, 40);
}

TEST(Matrix, InverseOfNonSquareRejected) {
  const Matrix m(2, 3);
  EXPECT_EQ(m.inverse().status().code(), StatusCode::kInvalidArgument);
}

TEST(Matrix, SolveSquareSystem) {
  Rng rng(7);
  const Matrix a = Matrix::vandermonde({0, 3, 9, 27}, 4);
  const Matrix x = random_matrix(4, 2, rng);
  const Matrix b = a.mul(x);
  const auto solved = a.solve(b);
  ASSERT_TRUE(solved.is_ok());
  EXPECT_EQ(*solved, x);
}

TEST(Matrix, SolveOverdeterminedConsistent) {
  Rng rng(8);
  // 6 equations, 4 unknowns, consistent by construction.
  Matrix a(6, 4);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      a.set(r, c, static_cast<Elem>(rng.next_below(256)));
    }
  }
  if (a.rank() < 4) GTEST_SKIP() << "degenerate random draw";
  const Matrix x = random_matrix(4, 1, rng);
  const Matrix b = a.mul(x);
  const auto solved = a.solve(b);
  ASSERT_TRUE(solved.is_ok());
  EXPECT_EQ(*solved, x);
}

TEST(Matrix, SolveInconsistentOverdeterminedFails) {
  // Rows 0 and 1 identical in A but different rhs -> no solution.
  const Matrix a{{1, 2}, {1, 2}, {3, 4}};
  const Matrix b{{5}, {6}, {7}};
  EXPECT_EQ(a.solve(b).status().code(), StatusCode::kDataLoss);
}

TEST(Matrix, SolveRankDeficientFails) {
  const Matrix a{{1, 2}, {2, 4}};  // second row = 2 * first over GF(256)
  const Matrix b{{1}, {2}};
  EXPECT_FALSE(a.solve(b).is_ok());
}

TEST(Matrix, SolveUnderdeterminedRejected) {
  const Matrix a(2, 3);
  const Matrix b(2, 1);
  EXPECT_EQ(a.solve(b).status().code(), StatusCode::kInvalidArgument);
}

TEST(Matrix, SelectRowsPreservesContent) {
  const Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const Matrix sel = m.select_rows({2, 0});
  EXPECT_EQ(sel, (Matrix{{5, 6}, {1, 2}}));
}

TEST(Matrix, RankOfRectangular) {
  const Matrix m{{1, 0, 0}, {0, 1, 0}};
  EXPECT_EQ(m.rank(), 2u);
  const Matrix z(3, 3);
  EXPECT_EQ(z.rank(), 0u);
}

TEST(LinearCombine, MatchesManualAccumulation) {
  const Buffer b0 = random_buffer(40, 1);
  const Buffer b1 = random_buffer(40, 2);
  const Buffer b2 = random_buffer(40, 3);
  const std::vector<Elem> coeffs{3, 0, 251};
  const std::vector<ByteSpan> blocks{b0, b1, b2};
  Buffer out(40);
  linear_combine(out, coeffs, blocks);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], add(mul(b0[i], 3), mul(b2[i], 251)));
  }
}

}  // namespace
}  // namespace dblrep::gf
