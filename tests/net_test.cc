// Tests for the link-level network model: token-bucket QoS math, FIFO
// store-and-forward timing on the two-tier fabric, flow dependency
// chaining, conservation (mid-flight and drained), and the MiniDfs
// TransferLog capture shim.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "chaos/invariants.h"
#include "cluster/topology.h"
#include "common/rng.h"
#include "hdfs/minidfs.h"
#include "net/model.h"
#include "net/qos.h"
#include "net/transfer.h"
#include "sim/event_queue.h"

namespace dblrep::net {
namespace {

// Hand-checkable link speeds: a 100-byte transfer takes 1 s on a NIC.
NetworkConfig easy_config() {
  NetworkConfig config;
  config.nic = {100.0, 0.5};
  config.tor = {1000.0, 0.25};
  config.spine = {2000.0, 0.125};
  return config;
}

cluster::Topology small_topology(std::size_t nodes = 6,
                                 std::size_t racks = 2) {
  cluster::Topology topology;
  topology.num_nodes = nodes;
  topology.num_racks = racks;
  return topology;
}

// ------------------------------------------------------------ TokenBucket

TEST(TokenBucket, BurstGrantsImmediatelyThenPacesAtRate) {
  TokenBucket bucket(100.0, 100.0);  // 100 B/s, 100 B burst
  EXPECT_DOUBLE_EQ(bucket.reserve(100.0, 0.0), 0.0);  // burst covers it
  // Bucket is empty: the next 100 bytes refill over exactly 1 s, and the
  // one after queues FIFO behind that grant.
  EXPECT_DOUBLE_EQ(bucket.reserve(100.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(bucket.reserve(100.0, 0.0), 2.0);
}

TEST(TokenBucket, OversizedReservationRunsADeficit) {
  TokenBucket bucket(100.0, 100.0);
  // 350 bytes against a 100-byte burst: 250 bytes of deficit paid off at
  // 100 B/s.
  EXPECT_DOUBLE_EQ(bucket.reserve(350.0, 0.0), 2.5);
  // Later arrivals still queue behind the pending grant.
  EXPECT_DOUBLE_EQ(bucket.reserve(100.0, 1.0), 3.5);
}

TEST(TokenBucket, IdleTimeRefillsUpToBurst) {
  TokenBucket bucket(100.0, 100.0);
  EXPECT_DOUBLE_EQ(bucket.reserve(100.0, 0.0), 0.0);
  // After 10 s idle the bucket is full again (capped at burst, not 1000).
  EXPECT_DOUBLE_EQ(bucket.reserve(100.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(bucket.reserve(100.0, 10.0), 11.0);
}

TEST(QosThrottler, AdmissionIsTheLaterOfClusterAndLinkGrant) {
  QosConfig config;
  config.cluster_rate = 100.0;
  config.cluster_burst = 100.0;
  config.link_fraction = 0.1;  // 10 B/s on a 100 B/s link
  config.link_burst = 50.0;
  QosThrottler throttler(config);
  throttler.add_link(0, 100.0);
  // Cluster burst covers 100 bytes at t=0, but the link bucket holds only
  // 50: the remaining 50 refill at 10 B/s -> granted at t=5.
  EXPECT_DOUBLE_EQ(throttler.admit(0, 100.0, 0.0), 5.0);
}

TEST(QosThrottler, AdaptiveModeScalesClusterRateWithHeadroom) {
  QosConfig config;
  config.cluster_rate = 100.0;
  config.adaptive = true;
  config.adaptive_boost = 4.0;
  QosThrottler throttler(config);
  throttler.observe_utilization(0.0, 0.0);  // idle network -> full boost
  EXPECT_DOUBLE_EQ(throttler.cluster_rate(), 400.0);
  throttler.observe_utilization(0.5, 1.0);
  EXPECT_DOUBLE_EQ(throttler.cluster_rate(), 250.0);
  throttler.observe_utilization(1.0, 2.0);  // saturated -> base rate
  EXPECT_DOUBLE_EQ(throttler.cluster_rate(), 100.0);
}

// ---------------------------------------------------------- NetworkModel

TEST(NetworkModel, IntraRackTransferTimingIsTwoNicHops) {
  sim::EventQueue queue;
  NetworkModel model(queue, small_topology(), easy_config());
  sim::SimTime delivered = -1.0;
  // Nodes 0 and 2 share rack 0 (round-robin racks). 100 bytes:
  //   nic_up[0]: 1 s tx + 0.5 s latency; nic_down[2]: 1 s tx + 0.5 s.
  model.start_transfer({0, 2, 100.0, TransferClass::kClientRead}, 0.0,
                       [&](sim::SimTime t) { delivered = t; });
  queue.run();
  EXPECT_DOUBLE_EQ(delivered, 3.0);
}

TEST(NetworkModel, CrossRackTransferTraversesTorAndSpine) {
  sim::EventQueue queue;
  NetworkModel model(queue, small_topology(), easy_config());
  sim::SimTime delivered = -1.0;
  // Node 0 (rack 0) -> node 1 (rack 1), 100 bytes:
  //   nic_up 1.5 + tor_up 0.35 + spine 0.175 + tor_down 0.35 + nic_down 1.5
  model.start_transfer({0, 1, 100.0, TransferClass::kClientRead}, 0.0,
                       [&](sim::SimTime t) { delivered = t; });
  queue.run();
  EXPECT_NEAR(delivered, 3.875, 1e-12);
  // The spine saw exactly this one transfer.
  bool spine_used = false;
  for (std::size_t id = 0; id < model.num_links(); ++id) {
    if (model.link(id).name == "spine") {
      spine_used = model.link(id).transfers == 1;
    }
  }
  EXPECT_TRUE(spine_used);
}

TEST(NetworkModel, SharedNicSerializesFifo) {
  sim::EventQueue queue;
  NetworkModel model(queue, small_topology(), easy_config());
  std::vector<sim::SimTime> delivered;
  for (int i = 0; i < 2; ++i) {
    model.start_transfer({0, 2, 100.0, TransferClass::kClientRead}, 0.0,
                         [&](sim::SimTime t) { delivered.push_back(t); });
  }
  queue.run();
  ASSERT_EQ(delivered.size(), 2u);
  // First as if alone; second waits a full tx behind it on *each* NIC.
  EXPECT_DOUBLE_EQ(delivered[0], 3.0);
  EXPECT_DOUBLE_EQ(delivered[1], 4.0);
  // The entry NIC's second transfer waited 1 s for the serializer.
  for (std::size_t id = 0; id < model.num_links(); ++id) {
    const LinkStats& link = model.link(id);
    if (link.name == "nic_up[0]") {
      EXPECT_EQ(link.transfers, 2u);
      EXPECT_DOUBLE_EQ(link.queue_delay_s.max(), 1.0);
      EXPECT_EQ(link.max_queue_depth, 2u);
    }
  }
}

TEST(NetworkModel, ClientTransfersAttachAtTheSpine) {
  sim::EventQueue queue;
  NetworkModel model(queue, small_topology(), easy_config());
  sim::SimTime up = -1.0, down = -1.0;
  // Upload client -> node 3: spine + tor_down + nic_down.
  model.start_transfer({kClientEndpoint, 3, 100.0,
                        TransferClass::kClientWrite},
                       0.0, [&](sim::SimTime t) { down = t; });
  // Delivery node 3 -> client: nic_up + tor_up + spine.
  model.start_transfer({3, kClientEndpoint, 100.0,
                        TransferClass::kClientRead},
                       0.0, [&](sim::SimTime t) { up = t; });
  queue.run();
  // spine 0.175 + tor_down 0.35 + nic_down 1.5 (no contention: disjoint
  // links; both values are the same 3-hop sum by symmetry).
  EXPECT_NEAR(down, 2.025, 1e-12);
  EXPECT_NEAR(up, 2.025, 1e-12);
  // No node NIC uplink carried the upload.
  for (std::size_t id = 0; id < model.num_links(); ++id) {
    const LinkStats& link = model.link(id);
    if (link.name == "nic_up[3]") {
      EXPECT_EQ(link.transfers, 1u);
    }
    if (link.name == "nic_down[3]") {
      EXPECT_EQ(link.transfers, 1u);
    }
  }
}

TEST(NetworkModel, SelfTransferDeliversInstantly) {
  sim::EventQueue queue;
  NetworkModel model(queue, small_topology(), easy_config());
  sim::SimTime delivered = -1.0;
  model.start_transfer({4, 4, 100.0, TransferClass::kRepair}, 2.0,
                       [&](sim::SimTime t) { delivered = t; });
  queue.run();
  EXPECT_DOUBLE_EQ(delivered, 2.0);
  EXPECT_DOUBLE_EQ(model.delivered_bytes(), 100.0);
}

TEST(NetworkModel, ThrottlerPacesRepairButNotClientTraffic) {
  NetworkConfig config = easy_config();
  config.throttle_repair = true;
  config.qos.cluster_rate = 100.0;
  config.qos.cluster_burst = 100.0;
  config.qos.link_fraction = 1.0;  // per-link bucket not the binding limit
  config.qos.link_burst = 1e9;
  sim::EventQueue queue;
  NetworkModel model(queue, small_topology(), config);
  std::vector<sim::SimTime> repair;
  sim::SimTime client = -1.0;
  for (int i = 0; i < 3; ++i) {
    model.start_transfer({0, 2, 100.0, TransferClass::kRepair}, 0.0,
                         [&](sim::SimTime t) { repair.push_back(t); });
  }
  model.start_transfer({4, 5, 100.0, TransferClass::kClientRead}, 0.0,
                       [&](sim::SimTime t) { client = t; });
  queue.run();
  ASSERT_EQ(repair.size(), 3u);
  // Admissions at 0 / 1 / 2 s: each repair transfer finds free links when
  // it finally enters (pacing >= serialization time), so deliveries land
  // 1 s apart instead of queueing back-to-back.
  EXPECT_DOUBLE_EQ(repair[0], 3.0);
  EXPECT_DOUBLE_EQ(repair[1], 4.0);
  EXPECT_DOUBLE_EQ(repair[2], 5.0);
  // The (cross-rack, disjoint-route) client read was never throttled: it
  // delivers as if the repair storm did not exist.
  EXPECT_NEAR(client, 3.875, 1e-12);
}

TEST(NetworkModel, FlowChainsDependentRecords) {
  sim::EventQueue queue;
  NetworkModel model(queue, small_topology(6, 1), easy_config());
  // helper(0) -> aggregator(2), then aggregator(2) -> destination(4): the
  // second leg may only start once the first delivers (t=3), so the flow
  // completes at 6 -- not at 3, which two independent transfers would give.
  sim::SimTime done = -1.0;
  model.start_flow({{0, 2, 100.0, TransferClass::kRepair},
                    {2, 4, 100.0, TransferClass::kRepair}},
                   0.0, [&](sim::SimTime t) { done = t; });
  queue.run();
  EXPECT_DOUBLE_EQ(done, 6.0);
}

TEST(NetworkModel, FlowRunsIndependentRecordsInParallel) {
  sim::EventQueue queue;
  NetworkModel model(queue, small_topology(6, 1), easy_config());
  sim::SimTime done = -1.0;
  // Two helpers on different nodes feed the same aggregator: their sends
  // overlap (disjoint nic_up links), and the relay waits for the later
  // arrival at nic_down[4] (second send serializes behind the first).
  model.start_flow({{0, 4, 100.0, TransferClass::kRepair},
                    {2, 4, 100.0, TransferClass::kRepair},
                    {4, 5, 100.0, TransferClass::kRepair}},
                   0.0, [&](sim::SimTime t) { done = t; });
  queue.run();
  // Sends deliver at 3 and 4 (shared nic_down[4]); relay 4->5 then takes
  // another 3 s.
  EXPECT_DOUBLE_EQ(done, 7.0);
}

TEST(NetworkModel, ConservationHoldsMidFlightAndWhenDrained) {
  sim::EventQueue queue;
  NetworkModel model(queue, small_topology(), easy_config());
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const auto from = static_cast<cluster::NodeId>(rng.uniform_int(0, 5));
    auto to = static_cast<cluster::NodeId>(rng.uniform_int(0, 5));
    model.start_transfer(
        {from, to, static_cast<double>(rng.uniform_int(1, 500)),
         TransferClass::kClientRead},
        rng.uniform(0.0, 2.0));
  }
  // Stop the clock mid-storm: the books must balance with bytes in flight.
  queue.run(2.5);
  std::vector<std::string> violations;
  chaos::check_network_conservation(model, violations);
  EXPECT_TRUE(violations.empty()) << violations.front();
  EXPECT_GT(model.in_flight_bytes(), 0.0);

  queue.run();
  violations.clear();
  chaos::check_network_conservation(model, violations,
                                    /*expect_drained=*/true);
  EXPECT_TRUE(violations.empty()) << violations.front();
  EXPECT_DOUBLE_EQ(model.delivered_bytes(), model.injected_bytes());
  EXPECT_EQ(model.transfers_delivered(), 50u);
}

// ------------------------------------------------- TransferLog + MiniDfs

TEST(TransferLog, RecordsDrainInCaptureOrder) {
  TransferLog log;
  log.record(0, 1, 10.0, TransferClass::kRepair);
  log.record(kClientEndpoint, 2, 20.0, TransferClass::kClientWrite);
  EXPECT_EQ(log.size(), 2u);
  const auto records = log.drain();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].to, 1);
  EXPECT_EQ(records[1].bytes, 20.0);
  EXPECT_EQ(log.size(), 0u);
}

TEST(MiniDfsShim, CapturesClassedTransfersMatchingTrafficMeter) {
  cluster::Topology topology;
  topology.num_nodes = 12;
  topology.num_racks = 3;
  TransferLog log;
  hdfs::MiniDfsOptions options;
  options.transfer_log = &log;
  hdfs::MiniDfs dfs(topology, 7, /*pool=*/nullptr, options);

  const Buffer data = random_buffer(64 * 10, 3);
  ASSERT_TRUE(dfs.write_file("/f", data, "pentagon", 64).is_ok());
  double upload_bytes = 0;
  for (const auto& r : log.drain()) {
    EXPECT_EQ(r.from, kClientEndpoint);
    EXPECT_EQ(r.cls, TransferClass::kClientWrite);
    upload_bytes += r.bytes;
  }
  EXPECT_DOUBLE_EQ(upload_bytes, dfs.traffic().client_bytes());

  const auto read = dfs.read_file("/f");
  ASSERT_TRUE(read.is_ok());
  double read_bytes = 0;
  for (const auto& r : log.drain()) {
    EXPECT_EQ(r.to, kClientEndpoint);
    EXPECT_EQ(r.cls, TransferClass::kClientRead);
    read_bytes += r.bytes;
  }
  EXPECT_DOUBLE_EQ(read_bytes + upload_bytes, dfs.traffic().client_bytes());

  // Repair traffic captures as node-to-node kRepair records whose byte sum
  // matches the meter's node-to-node delta.
  const double node_bytes_before =
      dfs.traffic().intra_rack_bytes() + dfs.traffic().cross_rack_bytes();
  ASSERT_TRUE(dfs.fail_node(dfs.catalog().node_of({0, 0})).is_ok());
  ASSERT_TRUE(dfs.repair_all().is_ok());
  double repair_bytes = 0;
  for (const auto& r : log.drain()) {
    if (!is_repair_class(r.cls)) continue;
    EXPECT_NE(r.from, kClientEndpoint);
    EXPECT_NE(r.to, kClientEndpoint);
    repair_bytes += r.bytes;
  }
  const double node_bytes_after =
      dfs.traffic().intra_rack_bytes() + dfs.traffic().cross_rack_bytes();
  EXPECT_DOUBLE_EQ(repair_bytes, node_bytes_after - node_bytes_before);
}

TEST(MiniDfsShim, CaptureDoesNotPerturbTheDataPlane) {
  // Identical seeds with and without the shim: stored bytes and traffic
  // totals must agree exactly (capture is observation, not behavior).
  cluster::Topology topology;
  topology.num_nodes = 12;
  topology.num_racks = 3;
  const Buffer data = random_buffer(64 * 10, 3);

  hdfs::MiniDfs plain(topology, 7, nullptr, {});
  TransferLog log;
  hdfs::MiniDfsOptions options;
  options.transfer_log = &log;
  hdfs::MiniDfs shimmed(topology, 7, nullptr, options);

  for (hdfs::MiniDfs* dfs : {&plain, &shimmed}) {
    ASSERT_TRUE(dfs->write_file("/f", data, "heptagon", 64).is_ok());
    ASSERT_TRUE(dfs->read_file("/f").is_ok());
  }
  EXPECT_EQ(plain.stored_bytes(), shimmed.stored_bytes());
  EXPECT_DOUBLE_EQ(plain.traffic().total_bytes(),
                   shimmed.traffic().total_bytes());
}

}  // namespace
}  // namespace dblrep::net
