// Integration tests for the mini-HDFS data plane: write/read round trips
// under every code, corruption fallback, failure + degraded reads with the
// paper's exact repair-bandwidth numbers measured on the wire, node repair,
// scrub, and the RaidNode re-encoder.
#include <gtest/gtest.h>

#include "cluster/topology.h"
#include "common/rng.h"
#include "hdfs/minidfs.h"
#include "ec/local_polygon.h"
#include "hdfs/raidnode.h"

namespace dblrep::hdfs {
namespace {

constexpr std::size_t kBlockSize = 64;

MiniDfs make_dfs(std::size_t nodes = 25, std::uint64_t seed = 7) {
  cluster::Topology topology;
  topology.num_nodes = nodes;
  return MiniDfs(topology, seed);
}

Buffer payload(std::size_t size, std::uint64_t seed = 1) {
  return random_buffer(size, seed);
}

// ---------------------------------------------------------- write/read

class DfsRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DfsRoundTripTest, WholeFileRoundTripsAcrossStripes) {
  MiniDfs dfs = make_dfs();
  // 2.5 stripes worth of data exercises striping and tail padding.
  const auto code_spec = GetParam();
  const Buffer data = payload(kBlockSize * 22);
  ASSERT_TRUE(dfs.write_file("/f", data, code_spec, kBlockSize).is_ok());
  const auto read = dfs.read_file("/f");
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  EXPECT_EQ(*read, data);
}

TEST_P(DfsRoundTripTest, SurvivesToleratedFailuresWithoutRepair) {
  MiniDfs dfs = make_dfs();
  const auto code_spec = GetParam();
  const Buffer data = payload(kBlockSize * 30, 2);
  ASSERT_TRUE(dfs.write_file("/f", data, code_spec, kBlockSize).is_ok());
  // Fail two nodes (every paper code tolerates 2).
  ASSERT_TRUE(dfs.fail_node(3).is_ok());
  ASSERT_TRUE(dfs.fail_node(11).is_ok());
  const auto read = dfs.read_file("/f");
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  EXPECT_EQ(*read, data);
}

TEST_P(DfsRoundTripTest, RepairAllRestoresFullRedundancy) {
  MiniDfs dfs = make_dfs();
  const auto code_spec = GetParam();
  const Buffer data = payload(kBlockSize * 30, 3);
  ASSERT_TRUE(dfs.write_file("/f", data, code_spec, kBlockSize).is_ok());
  const std::size_t bytes_healthy = dfs.stored_bytes();
  ASSERT_TRUE(dfs.fail_node(5).is_ok());
  ASSERT_TRUE(dfs.fail_node(17).is_ok());
  ASSERT_TRUE(dfs.repair_all().is_ok());
  EXPECT_EQ(dfs.stored_bytes(), bytes_healthy);
  EXPECT_TRUE(dfs.scrub().is_ok());
  const auto read = dfs.read_file("/f");
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(*read, data);
}

INSTANTIATE_TEST_SUITE_P(PaperCodes, DfsRoundTripTest,
                         ::testing::Values("2-rep", "3-rep", "pentagon",
                                           "heptagon", "heptagon-local",
                                           "raidm-9", "rs-10-4"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------- basic API

TEST(MiniDfs, StatListsAndDeletes) {
  MiniDfs dfs = make_dfs();
  ASSERT_TRUE(dfs.write_file("/a", payload(100), "pentagon", kBlockSize).is_ok());
  ASSERT_TRUE(dfs.write_file("/b", payload(100), "3-rep", kBlockSize).is_ok());
  EXPECT_EQ(dfs.list_files().size(), 2u);
  const auto info = dfs.stat("/a");
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info->code_spec, "pentagon");
  EXPECT_EQ(info->length, 100u);
  EXPECT_EQ(info->stripes.size(), 1u);
  ASSERT_TRUE(dfs.delete_file("/a").is_ok());
  EXPECT_EQ(dfs.list_files().size(), 1u);
  EXPECT_FALSE(dfs.stat("/a").is_ok());
  EXPECT_FALSE(dfs.delete_file("/a").is_ok());
}

TEST(MiniDfs, DuplicateCreateAndUnknownCodeRejected) {
  MiniDfs dfs = make_dfs();
  ASSERT_TRUE(dfs.write_file("/a", payload(10), "2-rep", kBlockSize).is_ok());
  EXPECT_EQ(dfs.write_file("/a", payload(10), "2-rep", kBlockSize).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(dfs.write_file("/c", payload(10), "nonagon", kBlockSize).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(dfs.write_file("/d", payload(10), "2-rep", 0).code(),
            StatusCode::kInvalidArgument);
}

TEST(MiniDfs, WriteNeedsEnoughLiveNodes) {
  MiniDfs dfs = make_dfs(6);  // heptagon needs 7 nodes
  EXPECT_EQ(dfs.write_file("/f", payload(10), "heptagon", kBlockSize).code(),
            StatusCode::kResourceExhausted);
  // pentagon fits on 6 nodes, but not after two failures.
  ASSERT_TRUE(dfs.fail_node(0).is_ok());
  ASSERT_TRUE(dfs.fail_node(1).is_ok());
  EXPECT_EQ(dfs.write_file("/f", payload(10), "pentagon", kBlockSize).code(),
            StatusCode::kResourceExhausted);
}

TEST(MiniDfs, StorageOverheadMatchesTable1) {
  // 9 data blocks in a pentagon file occupy exactly 20 blocks: 2.22x.
  MiniDfs dfs = make_dfs();
  const Buffer data = payload(kBlockSize * 9, 4);
  ASSERT_TRUE(dfs.write_file("/f", data, "pentagon", kBlockSize).is_ok());
  EXPECT_EQ(dfs.stored_bytes(), 20 * kBlockSize);
  ASSERT_TRUE(dfs.delete_file("/f").is_ok());
  EXPECT_EQ(dfs.stored_bytes(), 0u);
}

TEST(MiniDfs, ReadBlockOutOfRange) {
  MiniDfs dfs = make_dfs();
  ASSERT_TRUE(dfs.write_file("/f", payload(kBlockSize * 2), "2-rep",
                             kBlockSize).is_ok());
  EXPECT_TRUE(dfs.read_block("/f", 1).is_ok());
  EXPECT_FALSE(dfs.read_block("/f", 2).is_ok());
  EXPECT_FALSE(dfs.read_block("/missing", 0).is_ok());
}

// ------------------------------------------------------ corruption path

TEST(MiniDfs, CorruptReplicaFallsBackToHealthyCopy) {
  MiniDfs dfs = make_dfs();
  const Buffer data = payload(kBlockSize * 9, 5);
  ASSERT_TRUE(dfs.write_file("/f", data, "pentagon", kBlockSize).is_ok());
  // Corrupt the first replica of data block 0.
  const auto info = *dfs.stat("/f");
  const auto stripe = info.stripes[0];
  const auto& code = *dfs.code_for("/f").value();
  const std::size_t slot0 = code.layout().slots_of_symbol(0)[0];
  const cluster::NodeId holder = dfs.catalog().node_of({stripe, slot0});
  ASSERT_TRUE(dfs.datanode(holder).corrupt({stripe, slot0}, 3).is_ok());
  // Scrub must notice; the read must silently use the second replica.
  EXPECT_FALSE(dfs.scrub().is_ok());
  const auto block = dfs.read_block("/f", 0);
  ASSERT_TRUE(block.is_ok());
  EXPECT_TRUE(std::equal(block->begin(), block->end(), data.begin()));
}

TEST(MiniDfs, BothReplicasCorruptTriggersDegradedRead) {
  MiniDfs dfs = make_dfs();
  const Buffer data = payload(kBlockSize * 9, 6);
  ASSERT_TRUE(dfs.write_file("/f", data, "pentagon", kBlockSize).is_ok());
  const auto info = *dfs.stat("/f");
  const auto stripe = info.stripes[0];
  const auto& code = *dfs.code_for("/f").value();
  for (std::size_t slot : code.layout().slots_of_symbol(0)) {
    const cluster::NodeId holder = dfs.catalog().node_of({stripe, slot});
    ASSERT_TRUE(dfs.datanode(holder).corrupt({stripe, slot}, 0).is_ok());
  }
  // The degraded-read planner probes actual block availability (not just
  // down nodes), so a block whose replicas are all CRC-broken on *live*
  // nodes is still served by on-the-fly decode from the rest of the
  // stripe -- and never returns bad bytes.
  const auto block = dfs.read_block("/f", 0);
  ASSERT_TRUE(block.is_ok()) << block.status().to_string();
  EXPECT_TRUE(std::equal(block->begin(), block->end(), data.begin()));
}

TEST(MiniDfs, ScrubRepairHealsCorruptReplicas) {
  MiniDfs dfs = make_dfs();
  const Buffer data = payload(kBlockSize * 9, 30);
  ASSERT_TRUE(dfs.write_file("/f", data, "pentagon", kBlockSize).is_ok());
  const auto info = *dfs.stat("/f");
  const auto stripe = info.stripes[0];
  const auto& code = *dfs.code_for("/f").value();
  // Corrupt one replica of block 0 and one replica of the parity.
  const std::size_t data_slot = code.layout().slots_of_symbol(0)[0];
  const std::size_t parity_slot = code.layout().slots_of_symbol(9)[1];
  for (std::size_t slot : {data_slot, parity_slot}) {
    const cluster::NodeId holder = dfs.catalog().node_of({stripe, slot});
    ASSERT_TRUE(dfs.datanode(holder).corrupt({stripe, slot}, 1).is_ok());
  }
  EXPECT_FALSE(dfs.scrub().is_ok());
  const auto healed = dfs.scrub_repair();
  ASSERT_TRUE(healed.is_ok()) << healed.status().to_string();
  EXPECT_EQ(*healed, 2u);
  EXPECT_TRUE(dfs.scrub().is_ok());
  EXPECT_EQ(*dfs.read_file("/f"), data);
}

TEST(MiniDfs, ScrubRepairHealsEvenWithBothReplicasOfABlockCorrupt) {
  // scrub_repair decodes from whatever verifies, so it durably rewrites a
  // block whose two replicas are both CRC-broken on live nodes (reads of
  // the block already succeed beforehand via availability-probed degraded
  // reads, but only the scrub restores the replicas on disk).
  MiniDfs dfs = make_dfs();
  const Buffer data = payload(kBlockSize * 9, 31);
  ASSERT_TRUE(dfs.write_file("/f", data, "pentagon", kBlockSize).is_ok());
  const auto info = *dfs.stat("/f");
  const auto stripe = info.stripes[0];
  const auto& code = *dfs.code_for("/f").value();
  for (std::size_t slot : code.layout().slots_of_symbol(4)) {
    const cluster::NodeId holder = dfs.catalog().node_of({stripe, slot});
    ASSERT_TRUE(dfs.datanode(holder).corrupt({stripe, slot}, 2).is_ok());
  }
  EXPECT_TRUE(dfs.read_block("/f", 4).is_ok());
  const auto healed = dfs.scrub_repair();
  ASSERT_TRUE(healed.is_ok());
  EXPECT_EQ(*healed, 2u);
  const auto block = dfs.read_block("/f", 4);
  ASSERT_TRUE(block.is_ok());
  EXPECT_TRUE(std::equal(block->begin(), block->end(),
                         data.begin() + 4 * kBlockSize));
}

TEST(MiniDfs, ScrubRepairIsNoopWhenHealthy) {
  MiniDfs dfs = make_dfs();
  ASSERT_TRUE(dfs.write_file("/f", payload(kBlockSize * 9, 32), "heptagon",
                             kBlockSize).is_ok());
  const auto healed = dfs.scrub_repair();
  ASSERT_TRUE(healed.is_ok());
  EXPECT_EQ(*healed, 0u);
}

// ------------------------------------------- degraded reads on the wire

TEST(MiniDfs, PentagonDegradedReadMovesExactlyThreeBlocks) {
  // Section 3.1 measured on the simulated wire: with both holders of a
  // block down, the client read costs 3 block transfers.
  MiniDfs dfs = make_dfs();
  const Buffer data = payload(kBlockSize * 9, 7);
  ASSERT_TRUE(dfs.write_file("/f", data, "pentagon", kBlockSize).is_ok());
  const auto info = *dfs.stat("/f");
  const auto stripe = info.stripes[0];
  const auto& code = *dfs.code_for("/f").value();
  // Down both holders of block 0.
  for (std::size_t slot : code.layout().slots_of_symbol(0)) {
    ASSERT_TRUE(dfs.fail_node(dfs.catalog().node_of({stripe, slot})).is_ok());
  }
  dfs.traffic().reset();
  const auto block = dfs.read_block("/f", 0);
  ASSERT_TRUE(block.is_ok());
  EXPECT_TRUE(std::equal(block->begin(), block->end(), data.begin()));
  EXPECT_DOUBLE_EQ(dfs.traffic().total_bytes(), 3.0 * kBlockSize);
}

TEST(MiniDfs, RaidMirrorDegradedReadMovesNineBlocks) {
  MiniDfs dfs = make_dfs();
  const Buffer data = payload(kBlockSize * 9, 8);
  ASSERT_TRUE(dfs.write_file("/f", data, "raidm-9", kBlockSize).is_ok());
  const auto info = *dfs.stat("/f");
  const auto stripe = info.stripes[0];
  const auto& code = *dfs.code_for("/f").value();
  for (std::size_t slot : code.layout().slots_of_symbol(0)) {
    ASSERT_TRUE(dfs.fail_node(dfs.catalog().node_of({stripe, slot})).is_ok());
  }
  dfs.traffic().reset();
  const auto block = dfs.read_block("/f", 0);
  ASSERT_TRUE(block.is_ok());
  EXPECT_DOUBLE_EQ(dfs.traffic().total_bytes(), 9.0 * kBlockSize);
}

TEST(MiniDfs, HealthyReadTouchesNoInterNodeLinks) {
  MiniDfs dfs = make_dfs();
  const Buffer data = payload(kBlockSize * 9, 9);
  ASSERT_TRUE(dfs.write_file("/f", data, "pentagon", kBlockSize).is_ok());
  dfs.traffic().reset();
  ASSERT_TRUE(dfs.read_file("/f").is_ok());
  // All bytes go node -> client: exactly 9 blocks, one per data block.
  EXPECT_DOUBLE_EQ(dfs.traffic().total_bytes(), 9.0 * kBlockSize);
}

// -------------------------------------------------------- node repair

TEST(MiniDfs, SingleNodeRepairUsesRepairByTransferBandwidth) {
  MiniDfs dfs = make_dfs();
  const Buffer data = payload(kBlockSize * 9, 10);
  ASSERT_TRUE(dfs.write_file("/f", data, "pentagon", kBlockSize).is_ok());
  const auto info = *dfs.stat("/f");
  const auto stripe = info.stripes[0];
  const cluster::NodeId victim = dfs.catalog().stripe(stripe).group[0];
  ASSERT_TRUE(dfs.fail_node(victim).is_ok());
  dfs.traffic().reset();
  ASSERT_TRUE(dfs.repair_node(victim).is_ok());
  // Repair-by-transfer: the node's 4 blocks are plain-copied -> exactly 4
  // block transfers, no decode anywhere.
  EXPECT_DOUBLE_EQ(dfs.traffic().total_bytes(), 4.0 * kBlockSize);
  EXPECT_TRUE(dfs.scrub().is_ok());
}

TEST(MiniDfs, DoubleNodeRepairCostsTenBlocksOnTheWire) {
  // Section 2.1 end-to-end: repairing both lost nodes of one pentagon
  // stripe moves exactly 10 blocks.
  MiniDfs dfs = make_dfs();
  const Buffer data = payload(kBlockSize * 9, 11);
  ASSERT_TRUE(dfs.write_file("/f", data, "pentagon", kBlockSize).is_ok());
  const auto info = *dfs.stat("/f");
  const auto group = dfs.catalog().stripe(info.stripes[0]).group;
  ASSERT_TRUE(dfs.fail_node(group[0]).is_ok());
  ASSERT_TRUE(dfs.fail_node(group[1]).is_ok());
  dfs.traffic().reset();
  ASSERT_TRUE(dfs.repair_all().is_ok());
  EXPECT_DOUBLE_EQ(dfs.traffic().total_bytes(), 10.0 * kBlockSize);
  EXPECT_TRUE(dfs.scrub().is_ok());
  EXPECT_EQ(*dfs.read_file("/f"), data);
}

TEST(MiniDfs, RepairBeyondToleranceReportsDataLoss) {
  MiniDfs dfs = make_dfs();
  const Buffer data = payload(kBlockSize * 9, 12);
  ASSERT_TRUE(dfs.write_file("/f", data, "pentagon", kBlockSize).is_ok());
  const auto group = dfs.catalog().stripe(dfs.stat("/f")->stripes[0]).group;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(dfs.fail_node(group[i]).is_ok());
  const auto status = dfs.repair_all();
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST(MiniDfs, RepairIsNoopOnHealthyCluster) {
  MiniDfs dfs = make_dfs();
  ASSERT_TRUE(dfs.write_file("/f", payload(kBlockSize * 9, 13), "pentagon",
                             kBlockSize).is_ok());
  dfs.traffic().reset();
  ASSERT_TRUE(dfs.repair_all().is_ok());
  EXPECT_DOUBLE_EQ(dfs.traffic().total_bytes(), 0.0);
}

TEST(MiniDfs, RepairIgnoresDeletedFiles) {
  // Regression: deleting a file must tombstone its stripes, or a later
  // node repair tries to "rebuild" blocks that were intentionally removed
  // and reports phantom data loss.
  MiniDfs dfs = make_dfs();
  ASSERT_TRUE(dfs.write_file("/old", payload(kBlockSize * 18, 20), "3-rep",
                             kBlockSize).is_ok());
  ASSERT_TRUE(dfs.write_file("/keep", payload(kBlockSize * 9, 21), "pentagon",
                             kBlockSize).is_ok());
  ASSERT_TRUE(dfs.delete_file("/old").is_ok());
  ASSERT_TRUE(dfs.fail_node(4).is_ok());
  ASSERT_TRUE(dfs.fail_node(16).is_ok());
  EXPECT_TRUE(dfs.repair_all().is_ok());
  EXPECT_TRUE(dfs.scrub().is_ok());
}

TEST(MiniDfs, HeptagonLocalPlacementIsRackAwareWhenPossible) {
  // Section 2.2: the two heptagons and the global parity node land on
  // three different racks when the topology provides them.
  cluster::Topology topology;
  topology.num_nodes = 24;
  topology.num_racks = 3;
  MiniDfs dfs(topology, 9);
  ASSERT_TRUE(dfs.write_file("/f", payload(kBlockSize * 40, 40),
                             "heptagon-local", kBlockSize).is_ok());
  const auto info = *dfs.stat("/f");
  const auto& stripe = dfs.catalog().stripe(info.stripes[0]);
  const auto* code =
      dynamic_cast<const ec::LocalPolygonCode*>(stripe.code);
  ASSERT_NE(code, nullptr);
  std::set<int> local0_racks, local1_racks;
  for (std::size_t i = 0; i < 7; ++i) {
    local0_racks.insert(topology.rack_of(stripe.group[i]));
    local1_racks.insert(topology.rack_of(stripe.group[7 + i]));
  }
  const int global_rack = topology.rack_of(stripe.group[14]);
  EXPECT_EQ(local0_racks.size(), 1u);
  EXPECT_EQ(local1_racks.size(), 1u);
  EXPECT_NE(*local0_racks.begin(), *local1_racks.begin());
  EXPECT_NE(global_rack, *local0_racks.begin());
  EXPECT_NE(global_rack, *local1_racks.begin());
  // The data plane still round-trips and repairs under this placement.
  EXPECT_EQ(*dfs.read_file("/f"), payload(kBlockSize * 40, 40));
  ASSERT_TRUE(dfs.fail_node(stripe.group[2]).is_ok());
  ASSERT_TRUE(dfs.repair_all().is_ok());
  EXPECT_TRUE(dfs.scrub().is_ok());
}

TEST(MiniDfs, HeptagonLocalFallsBackToUniformOnSingleRack) {
  MiniDfs dfs = make_dfs();  // 25 nodes, 1 rack
  ASSERT_TRUE(dfs.write_file("/f", payload(kBlockSize * 40, 41),
                             "heptagon-local", kBlockSize).is_ok());
  EXPECT_EQ(*dfs.read_file("/f"), payload(kBlockSize * 40, 41));
}

TEST(MiniDfs, RackLocalRepairKeepsCrossRackTrafficAtZero) {
  // The locality benefit of the local code: repairing <=2 failures inside
  // one heptagon never crosses racks.
  cluster::Topology topology;
  topology.num_nodes = 24;
  topology.num_racks = 3;
  MiniDfs dfs(topology, 10);
  const Buffer data = payload(kBlockSize * 40, 42);
  ASSERT_TRUE(
      dfs.write_file("/f", data, "heptagon-local", kBlockSize).is_ok());
  const auto info = *dfs.stat("/f");
  const auto& stripe = dfs.catalog().stripe(info.stripes[0]);
  ASSERT_TRUE(dfs.fail_node(stripe.group[1]).is_ok());
  ASSERT_TRUE(dfs.fail_node(stripe.group[4]).is_ok());
  dfs.traffic().reset();
  ASSERT_TRUE(dfs.repair_all().is_ok());
  EXPECT_GT(dfs.traffic().total_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(dfs.traffic().cross_rack_bytes(), 0.0);
  EXPECT_EQ(*dfs.read_file("/f"), data);
}

// ------------------------------------------------------------ RaidNode

TEST(RaidNode, ConvertsThreeRepToPentagonAndReclaimsSpace) {
  MiniDfs dfs = make_dfs();
  RaidNode raid(dfs);
  const Buffer data = payload(kBlockSize * 18, 14);  // 2 pentagon stripes
  ASSERT_TRUE(dfs.write_file("/warm", data, "3-rep", kBlockSize).is_ok());
  const std::size_t before = dfs.stored_bytes();
  EXPECT_EQ(before, 3 * 18 * kBlockSize);

  const auto report = raid.raid_file("/warm", "pentagon");
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->stripes_written, 2u);
  EXPECT_EQ(dfs.stored_bytes(), 2 * 20 * kBlockSize);  // 2.22x < 3x
  EXPECT_LT(dfs.stored_bytes(), before);

  const auto read = dfs.read_file("/warm");
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(*read, data);
  EXPECT_EQ(dfs.stat("/warm")->code_spec, "pentagon");
  EXPECT_TRUE(dfs.scrub().is_ok());
}

TEST(RaidNode, RefusesNoopConversion) {
  MiniDfs dfs = make_dfs();
  RaidNode raid(dfs);
  ASSERT_TRUE(dfs.write_file("/f", payload(100, 15), "pentagon", kBlockSize)
                  .is_ok());
  EXPECT_EQ(raid.raid_file("/f", "pentagon").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(raid.raid_file("/missing", "pentagon").is_ok());
}

TEST(RaidNode, RaidsThroughDegradedStripes) {
  // Re-encoding must work even while a replica holder is down (reads fall
  // back to the surviving copies).
  MiniDfs dfs = make_dfs();
  RaidNode raid(dfs);
  const Buffer data = payload(kBlockSize * 18, 16);
  ASSERT_TRUE(dfs.write_file("/f", data, "2-rep", kBlockSize).is_ok());
  ASSERT_TRUE(dfs.fail_node(4).is_ok());
  const auto report = raid.raid_file("/f", "heptagon");
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  const auto read = dfs.read_file("/f");
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(*read, data);
}

}  // namespace
}  // namespace dblrep::hdfs
